#include "sim/network.hpp"

#include "common/assert.hpp"

namespace rtether::sim {

SimNetwork::SimNetwork(SimConfig config, std::uint32_t node_count,
                       std::size_t best_effort_depth)
    : config_(config) {
  RTETHER_ASSERT_MSG(node_count >= 1, "network needs at least one node");
  miss_allowance_ = config_.t_latency_ticks(/*with_best_effort=*/true);

  // Switch ports deliver to nodes after one propagation delay; delivery is
  // also the measurement point for end-to-end statistics.
  switch_ = std::make_unique<SimSwitch>(
      simulator_, config_, node_count,
      [this](NodeId port, SimFrame frame, Tick /*completion*/) {
        simulator_.schedule_in(
            config_.propagation_ticks,
            [this, port, frame = std::move(frame)]() {
              const Tick now = simulator_.now();
              if (frame.info.cls == FrameClass::kRealTime &&
                  frame.info.rt_tag) {
                stats_.record_rt_delivered(
                    frame.info.rt_tag->channel, frame.created_at,
                    frame.info.rt_tag->absolute_deadline, now,
                    miss_allowance_);
              } else if (frame.info.cls == FrameClass::kBestEffort) {
                stats_.record_best_effort_delivered(frame.created_at, now);
              }
              node(port).receive(frame, now);
            });
      },
      best_effort_depth);

  // Node uplinks deliver to the switch ingress after one propagation delay.
  nodes_.reserve(node_count);
  for (std::uint32_t n = 0; n < node_count; ++n) {
    const NodeId id{n};
    nodes_.push_back(std::make_unique<SimNode>(
        simulator_, config_, id,
        [this, id](SimFrame frame, Tick /*completion*/) {
          simulator_.schedule_in(
              config_.propagation_ticks,
              [this, id, frame = std::move(frame)]() mutable {
                switch_->ingress(std::move(frame), id);
              });
        },
        best_effort_depth));
  }
}

SimNode& SimNetwork::node(NodeId id) {
  RTETHER_ASSERT(id.value() < nodes_.size());
  return *nodes_[id.value()];
}

double SimNetwork::uplink_utilization(NodeId id) const {
  const Tick elapsed = simulator_.now();
  if (elapsed == 0) return 0.0;
  return static_cast<double>(
             nodes_[id.value()]->uplink().stats().busy_ticks) /
         static_cast<double>(elapsed);
}

double SimNetwork::downlink_utilization(NodeId id) const {
  const Tick elapsed = simulator_.now();
  if (elapsed == 0) return 0.0;
  return static_cast<double>(switch_->port(id).stats().busy_ticks) /
         static_cast<double>(elapsed);
}

}  // namespace rtether::sim
