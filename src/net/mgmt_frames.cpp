#include "net/mgmt_frames.hpp"

namespace rtether::net {

std::optional<MgmtFrameType> peek_mgmt_type(
    std::span<const std::uint8_t> payload) {
  if (payload.empty()) return std::nullopt;
  const auto type = payload[0];
  if (type < static_cast<std::uint8_t>(MgmtFrameType::kConnectRequest) ||
      type > static_cast<std::uint8_t>(MgmtFrameType::kTeardownResponse)) {
    return std::nullopt;
  }
  return static_cast<MgmtFrameType>(type);
}

std::vector<std::uint8_t> RequestFrame::serialize() const {
  ByteWriter out(kWireSize);
  out.write_u8(static_cast<std::uint8_t>(MgmtFrameType::kConnectRequest));
  out.write_u8(connection_request.value());
  out.write_u16(rt_channel.value());
  out.write_u48(source_mac.to_u48());
  out.write_u48(destination_mac.to_u48());
  out.write_u32(source_ip.value());
  out.write_u32(destination_ip.value());
  out.write_u32(period);
  out.write_u32(capacity);
  out.write_u32(deadline);
  return std::move(out).take();
}

std::optional<RequestFrame> RequestFrame::parse(
    std::span<const std::uint8_t> payload) {
  ByteReader in(payload);
  const auto type = in.read_u8();
  if (!type ||
      *type != static_cast<std::uint8_t>(MgmtFrameType::kConnectRequest)) {
    return std::nullopt;
  }
  RequestFrame frame;
  const auto request = in.read_u8();
  const auto channel = in.read_u16();
  const auto src_mac = in.read_u48();
  const auto dst_mac = in.read_u48();
  const auto src_ip = in.read_u32();
  const auto dst_ip = in.read_u32();
  const auto period = in.read_u32();
  const auto capacity = in.read_u32();
  const auto deadline = in.read_u32();
  if (!request || !channel || !src_mac || !dst_mac || !src_ip || !dst_ip ||
      !period || !capacity || !deadline) {
    return std::nullopt;
  }
  frame.connection_request = ConnectionRequestId(*request);
  frame.rt_channel = ChannelId(*channel);
  frame.source_mac = MacAddress::from_u48(*src_mac);
  frame.destination_mac = MacAddress::from_u48(*dst_mac);
  frame.source_ip = Ipv4Address(*src_ip);
  frame.destination_ip = Ipv4Address(*dst_ip);
  frame.period = *period;
  frame.capacity = *capacity;
  frame.deadline = *deadline;
  return frame;
}

std::vector<std::uint8_t> ResponseFrame::serialize() const {
  ByteWriter out(kWireSize);
  out.write_u8(static_cast<std::uint8_t>(MgmtFrameType::kConnectResponse));
  out.write_u8(connection_request.value());
  out.write_u16(rt_channel.value());
  out.write_u8(accepted ? 1 : 0);  // 1-bit verdict in the low bit
  out.write_u32(uplink_deadline);
  return std::move(out).take();
}

std::optional<ResponseFrame> ResponseFrame::parse(
    std::span<const std::uint8_t> payload) {
  ByteReader in(payload);
  const auto type = in.read_u8();
  if (!type ||
      *type != static_cast<std::uint8_t>(MgmtFrameType::kConnectResponse)) {
    return std::nullopt;
  }
  const auto request = in.read_u8();
  const auto channel = in.read_u16();
  const auto verdict = in.read_u8();
  const auto uplink_deadline = in.read_u32();
  if (!request || !channel || !verdict || !uplink_deadline) {
    return std::nullopt;
  }
  ResponseFrame frame;
  frame.connection_request = ConnectionRequestId(*request);
  frame.rt_channel = ChannelId(*channel);
  frame.accepted = (*verdict & 1) != 0;
  frame.uplink_deadline = *uplink_deadline;
  return frame;
}

std::vector<std::uint8_t> TeardownFrame::serialize() const {
  ByteWriter out(kWireSize);
  out.write_u8(static_cast<std::uint8_t>(
      is_ack ? MgmtFrameType::kTeardownResponse
             : MgmtFrameType::kTeardownRequest));
  out.write_u16(rt_channel.value());
  out.write_u8(0);  // reserved
  return std::move(out).take();
}

std::optional<TeardownFrame> TeardownFrame::parse(
    std::span<const std::uint8_t> payload) {
  ByteReader in(payload);
  const auto type = in.read_u8();
  if (!type) return std::nullopt;
  const bool is_request =
      *type == static_cast<std::uint8_t>(MgmtFrameType::kTeardownRequest);
  const bool is_response =
      *type == static_cast<std::uint8_t>(MgmtFrameType::kTeardownResponse);
  if (!is_request && !is_response) return std::nullopt;
  const auto channel = in.read_u16();
  if (!channel) return std::nullopt;
  TeardownFrame frame;
  frame.rt_channel = ChannelId(*channel);
  frame.is_ack = is_response;
  return frame;
}

}  // namespace rtether::net
