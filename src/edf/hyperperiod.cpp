#include "edf/hyperperiod.hpp"

#include "common/math.hpp"

namespace rtether::edf {

std::optional<Slot> hyperperiod(const TaskSet& set) {
  Slot acc = 1;
  for (const auto& task : set.tasks()) {
    const auto next = checked_lcm(acc, task.period);
    if (!next) return std::nullopt;
    acc = *next;
  }
  return acc;
}

}  // namespace rtether::edf
