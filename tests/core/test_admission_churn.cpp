/// Churn conformance for the release fast path: randomized
/// admit/release/re-admit streams must leave every admission path — the
/// reference `AdmissionController`, the batched `AdmissionEngine` (downdate
/// and the release-as-invalidate baseline), and the sharded
/// `ParallelAdmissionEngine::process` — in bit-exact agreement: same
/// accepts/rejects, same channel IDs, same partitions, same rejection
/// reasons *and diagnostic strings*, same registries and stats. On star
/// topologies the multihop `PathAdmissionController` (SDPS, even deadlines)
/// must additionally match the classic controller decision-for-decision
/// through the same churn. A second property pins the absence of stale
/// cache pessimism: releasing a channel and immediately re-requesting the
/// identical contract is always accepted under a state-independent (SDPS)
/// or exhaustive (Search) partitioner.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "core/admission.hpp"
#include "core/multihop.hpp"
#include "core/parallel_admission.hpp"
#include "core/partitioner.hpp"
#include "core/topology.hpp"

namespace rtether::core {
namespace {

ChannelSpec random_spec(Rng& rng, std::uint32_t nodes) {
  static constexpr Slot kPeriods[] = {40, 60, 80, 100, 150, 200, 300};
  const auto src = static_cast<std::uint32_t>(rng.index(nodes));
  auto dst = static_cast<std::uint32_t>(rng.index(nodes));
  if (dst == src) {
    dst = (dst + 1) % nodes;
  }
  const Slot period = kPeriods[rng.index(std::size(kPeriods))];
  const Slot capacity = 1 + rng.index(4);
  Slot deadline;
  if (rng.index(16) == 0) {
    deadline = rng.index(2 * capacity);  // violates d ≥ 2C
  } else {
    deadline = 2 * capacity + rng.index(period - 2 * capacity + 1);
  }
  return ChannelSpec{NodeId{src}, NodeId{dst}, period, capacity, deadline};
}

void expect_same_outcome(const Expected<RtChannel, Rejection>& expected,
                         const Expected<RtChannel, Rejection>& actual,
                         const std::string& where) {
  ASSERT_EQ(expected.has_value(), actual.has_value()) << where;
  if (expected.has_value()) {
    EXPECT_EQ(expected->id, actual->id) << where;
    EXPECT_EQ(expected->partition, actual->partition) << where;
  } else {
    EXPECT_EQ(expected.error().reason, actual.error().reason) << where;
    EXPECT_EQ(expected.error().detail, actual.error().detail) << where;
  }
}

void expect_same_release(const ReleaseOutcome& expected,
                         const ReleaseOutcome& actual,
                         const std::string& where) {
  ASSERT_EQ(expected.has_value(), actual.has_value()) << where;
  if (expected.has_value()) {
    EXPECT_EQ(*expected, *actual) << where;
  } else {
    EXPECT_EQ(expected.error().reason, actual.error().reason) << where;
    EXPECT_EQ(expected.error().detail, actual.error().detail) << where;
  }
}

/// Drives one randomized admit/release/re-admit stream through all four
/// admission paths and asserts bit-exact agreement at every op.
void expect_churn_equivalent(std::uint64_t seed, std::size_t op_count,
                             std::uint32_t nodes, const std::string& scheme,
                             double release_probability = 0.45) {
  Rng rng(seed);
  AdmissionController controller(nodes, make_partitioner(scheme));
  AdmissionEngine downdating(nodes, make_partitioner(scheme));
  AdmissionConfig rebuild_config;
  rebuild_config.release = ReleasePolicy::kRebuild;
  AdmissionEngine rebuilding(nodes, make_partitioner(scheme), rebuild_config);

  std::vector<ChannelOp> ops;       // replayed through process() afterwards
  std::vector<ReleaseOutcome> release_results;
  std::vector<Expected<RtChannel, Rejection>> admit_results;
  std::vector<ChannelId> live;
  for (std::size_t i = 0; i < op_count; ++i) {
    const bool release = !live.empty() && rng.bernoulli(release_probability);
    if (release) {
      // Mostly live victims; occasionally a bogus or double release.
      ChannelId id;
      if (rng.bernoulli(0.15)) {
        id = ChannelId{static_cast<std::uint16_t>(30'000 + rng.index(999))};
      } else {
        const std::size_t victim = rng.index(live.size());
        id = live[victim];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      }
      const ReleaseOutcome expected = controller.release(id);
      expect_same_release(expected, downdating.release(id),
                          "op " + std::to_string(i) + " (downdate engine)");
      expect_same_release(expected, rebuilding.release(id),
                          "op " + std::to_string(i) + " (rebuild engine)");
      ops.push_back(ChannelOp::release(id));
      release_results.push_back(expected);
      continue;
    }
    const ChannelSpec spec = random_spec(rng, nodes);
    const auto expected = controller.request(spec);
    expect_same_outcome(expected, downdating.admit(spec),
                        "op " + std::to_string(i) + " (downdate engine)");
    expect_same_outcome(expected, rebuilding.admit(spec),
                        "op " + std::to_string(i) + " (rebuild engine)");
    if (expected.has_value()) {
      live.push_back(expected->id);
    }
    ops.push_back(ChannelOp::admit(spec));
    admit_results.push_back(expected);
  }

  // The sharded engine digests the identical mixed stream in one go.
  ParallelAdmissionConfig parallel_config;
  parallel_config.threads = 2;
  parallel_config.min_parallel_batch = 2;
  ParallelAdmissionEngine parallel(nodes, make_partitioner(scheme),
                                   parallel_config);
  const ChurnResult churn = parallel.process(ops);
  ASSERT_EQ(churn.admissions.size(), admit_results.size());
  ASSERT_EQ(churn.releases.size(), release_results.size());
  for (std::size_t k = 0; k < admit_results.size(); ++k) {
    expect_same_outcome(admit_results[k], churn.admissions[k],
                        "admit " + std::to_string(k) + " (parallel)");
  }
  for (std::size_t k = 0; k < release_results.size(); ++k) {
    expect_same_release(release_results[k], churn.releases[k],
                        "release " + std::to_string(k) + " (parallel)");
  }

  // End-of-stream agreement: registries and stats.
  for (const AdmissionStats* stats :
       {&downdating.stats(), &rebuilding.stats(), &parallel.stats()}) {
    EXPECT_EQ(stats->accepted, controller.stats().accepted);
    EXPECT_EQ(stats->rejected, controller.stats().rejected);
    EXPECT_EQ(stats->released, controller.stats().released);
  }
  for (const NetworkState* state :
       {&downdating.state(), &rebuilding.state(), &parallel.state()}) {
    ASSERT_EQ(state->channel_count(), controller.state().channel_count());
    for (const auto& channel : controller.state().channels()) {
      const auto other = state->find_channel(channel.id);
      ASSERT_TRUE(other.has_value());
      EXPECT_EQ(*other, channel);
    }
  }
}

TEST(AdmissionChurn, FourPathsAgreeAdps) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    expect_churn_equivalent(seed, 300, 6, "ADPS");
  }
}

TEST(AdmissionChurn, FourPathsAgreeSdpsSaturating) {
  // Few nodes + many ops: links saturate, so churn keeps flipping requests
  // across the accept/reject boundary — the regime where a stale (or
  // under-shrunk) cache would first disagree with the reference.
  for (std::uint64_t seed = 11; seed <= 13; ++seed) {
    expect_churn_equivalent(seed, 500, 3, "SDPS", 0.5);
  }
}

TEST(AdmissionChurn, FourPathsAgreeSearch) {
  // Search proposes many candidates per request: every rejected candidate
  // runs another trial against the churned caches.
  expect_churn_equivalent(21, 150, 4, "Search");
}

TEST(AdmissionChurn, FourPathsAgreeUdps) {
  expect_churn_equivalent(31, 250, 5, "UDPS");
}

TEST(AdmissionChurn, MultihopSdpsEvenDeadlineParityThroughChurn) {
  // On a star fabric under SDPS with even deadlines the k-hop split equals
  // the classic floor split, so the multihop controller must reproduce the
  // classic decisions through arbitrary churn (k-hop release downdates).
  Rng rng(41);
  const std::uint32_t nodes = 5;
  AdmissionController classic(nodes, make_partitioner("SDPS"));
  PathAdmissionController multihop(Topology::single_switch(nodes),
                                   make_path_partitioner("SDPS"));
  std::vector<ChannelId> live;
  for (std::size_t i = 0; i < 400; ++i) {
    if (!live.empty() && rng.bernoulli(0.45)) {
      const std::size_t victim = rng.index(live.size());
      const ChannelId id = live[victim];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      expect_same_release(classic.release(id), multihop.release(id),
                          "op " + std::to_string(i) + " (multihop release)");
      continue;
    }
    ChannelSpec spec = random_spec(rng, nodes);
    spec.deadline &= ~Slot{1};  // even deadlines only
    const auto expected = classic.request(spec);
    const auto actual = multihop.request(spec);
    ASSERT_EQ(expected.has_value(), actual.has_value())
        << "op " << i << " " << spec.to_string();
    if (expected.has_value()) {
      EXPECT_EQ(expected->id, actual->id) << "op " << i;
      live.push_back(expected->id);
    }
  }
  EXPECT_EQ(multihop.state().channel_count(),
            classic.state().channel_count());
}

TEST(AdmissionChurn, ExhaustiveScanAgreesOnNearOverflowHyperperiods) {
  // Near-64-bit (non-overflowing) hyperperiods: the exhaustive oracle falls
  // back to the busy-period bound instead of materializing ~10¹⁸ instants,
  // and the sequential, batched and parallel engines must produce identical
  // decisions with it — pinned here with coprime near-2³¹/2³² periods whose
  // running lcm also overflows mid-stream.
  AdmissionConfig config;
  config.scan = edf::DemandScan::kExhaustive;
  const std::uint32_t nodes = 4;
  AdmissionController controller(nodes, make_partitioner("ADPS"), config);
  AdmissionEngine engine(nodes, make_partitioner("ADPS"), config);
  ParallelAdmissionConfig parallel_config;
  parallel_config.admission = config;
  parallel_config.threads = 2;
  parallel_config.min_parallel_batch = 2;
  ParallelAdmissionEngine parallel(nodes, make_partitioner("ADPS"),
                                   parallel_config);

  static constexpr Slot kHugePeriods[] = {
      2'147'483'647, 4'294'967'291, 3'037'000'493,
      18'446'744'073'709'551'557ULL};
  std::vector<ChannelRequest> batch;
  std::vector<ChannelId> accepted;
  for (std::uint32_t i = 0; i < 12; ++i) {
    const Slot period = kHugePeriods[i % std::size(kHugePeriods)];
    const ChannelSpec request{NodeId{i % nodes}, NodeId{(i + 1) % nodes},
                              period, 1 + i % 2, 4 + 2 * (i % 3)};
    batch.push_back(ChannelRequest{request});
  }
  const auto batched = engine.admit_batch(batch);
  const auto sharded = parallel.admit_batch(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto expected = controller.request(batch[i].spec);
    expect_same_outcome(expected, batched.outcomes[i],
                        "request " + std::to_string(i) + " (batched)");
    expect_same_outcome(expected, sharded.outcomes[i],
                        "request " + std::to_string(i) + " (parallel)");
    if (expected.has_value()) {
      accepted.push_back(expected->id);
    }
  }
  ASSERT_FALSE(accepted.empty());
  // Release/re-admit a huge-period channel through every path.
  const ChannelId victim = accepted.front();
  EXPECT_TRUE(controller.release(victim));
  EXPECT_TRUE(engine.release(victim));
  EXPECT_TRUE(parallel.release(victim));
  const ChannelSpec readmit = batch.front().spec;
  const auto expected = controller.request(readmit);
  expect_same_outcome(expected, engine.admit(readmit), "re-admit (batched)");
  expect_same_outcome(expected, parallel.admit(readmit),
                      "re-admit (parallel)");
}

TEST(AdmissionChurn, ReleaseThenIdenticalReadmitAlwaysAccepted) {
  // No stale cache pessimism: under a state-independent (SDPS) or
  // exhaustive (Search) partitioner, releasing a channel and immediately
  // re-requesting the identical contract must always be accepted — the
  // freed capacity is exactly what the contract needs.
  for (const char* scheme : {"SDPS", "Search"}) {
    Rng rng(51);
    const std::uint32_t nodes = 4;
    AdmissionEngine engine(nodes, make_partitioner(scheme));
    ParallelAdmissionConfig parallel_config;
    parallel_config.threads = 2;
    parallel_config.min_parallel_batch = 2;
    ParallelAdmissionEngine parallel(nodes, make_partitioner(scheme),
                                     parallel_config);
    std::vector<RtChannel> live;
    for (std::size_t i = 0; i < 250; ++i) {
      if (!live.empty() && rng.bernoulli(0.4)) {
        const std::size_t victim = rng.index(live.size());
        const RtChannel channel = live[victim];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
        ASSERT_TRUE(engine.release(channel.id));
        const auto readmit = engine.admit(channel.spec);
        ASSERT_TRUE(readmit.has_value())
            << scheme << " op " << i << ": identical re-admit of "
            << channel.spec.to_string() << " rejected after release: "
            << readmit.error().detail;
        // Mirror on the parallel engine so both stay in lockstep.
        ASSERT_TRUE(parallel.release(channel.id));
        const auto parallel_readmit = parallel.admit(channel.spec);
        ASSERT_TRUE(parallel_readmit.has_value());
        EXPECT_EQ(readmit->id, parallel_readmit->id);
        live.push_back(*readmit);
        continue;
      }
      const ChannelSpec spec = random_spec(rng, nodes);
      const auto outcome = engine.admit(spec);
      const auto parallel_outcome = parallel.admit(spec);
      ASSERT_EQ(outcome.has_value(), parallel_outcome.has_value());
      if (outcome.has_value()) {
        live.push_back(*outcome);
      }
    }
  }
}

}  // namespace
}  // namespace rtether::core
