#include "sim/transmitter.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/bytes.hpp"
#include "net/ethernet.hpp"
#include "net/ipv4.hpp"
#include "sim/addressing.hpp"

namespace rtether::sim {
namespace {

class TransmitterTest : public ::testing::Test {
 protected:
  TransmitterTest()
      : tx_(sim_, config_, "tx",
            Transmitter::Sink::custom(
                [](void* context, const SimFrame& frame, Tick completion) {
                  static_cast<TransmitterTest*>(context)->delivered_.push_back(
                      {frame.id, completion});
                },
                this)) {}

  /// Full-size frame (exactly one slot of transmission time).
  SimFrame full_frame(std::uint64_t id) {
    net::EthernetHeader ethernet;
    ethernet.source = node_mac(NodeId{0});
    ethernet.destination = node_mac(NodeId{1});
    ethernet.ether_type = net::EtherType::kIpv4;
    ByteWriter w;
    ethernet.serialize(w);
    // 14 header + 1500 payload + 24 framing = 1538 wire bytes.
    return SimFrame::make(id, std::move(w).take(), 1500, sim_.now(),
                          NodeId{0});
  }

  SimConfig config_{.ticks_per_slot = 100,
                    .propagation_ticks = 0,
                    .switch_processing_ticks = 0};
  Simulator sim_;
  std::vector<std::pair<std::uint64_t, Tick>> delivered_;
  Transmitter tx_;
};

TEST_F(TransmitterTest, TransmitsOneFrameInOneSlot) {
  tx_.enqueue_rt(1000, full_frame(1));
  EXPECT_TRUE(sim_.run_all());
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].first, 1u);
  EXPECT_EQ(delivered_[0].second, 100u);  // exactly ticks_per_slot
}

TEST_F(TransmitterTest, BackToBackFrames) {
  tx_.enqueue_rt(1000, full_frame(1));
  tx_.enqueue_rt(1000, full_frame(2));
  EXPECT_TRUE(sim_.run_all());
  ASSERT_EQ(delivered_.size(), 2u);
  EXPECT_EQ(delivered_[0].second, 100u);
  EXPECT_EQ(delivered_[1].second, 200u);
}

TEST_F(TransmitterTest, EdfOrderAcrossQueuedFrames) {
  tx_.enqueue_rt(300, full_frame(1));
  tx_.enqueue_rt(100, full_frame(2));
  tx_.enqueue_rt(200, full_frame(3));
  EXPECT_TRUE(sim_.run_all());
  // All three are enqueued at the same tick, so the arbitration event sees
  // them together and the wire goes in pure EDF order — enqueue order must
  // not matter. (The pre-arbitration transmitter started frame 1 inline and
  // delivered 1,2,3: a same-tick priority inversion the scenario fuzzer
  // exposed as a real deadline miss.)
  ASSERT_EQ(delivered_.size(), 3u);
  EXPECT_EQ(delivered_[0].first, 2u);
  EXPECT_EQ(delivered_[1].first, 3u);
  EXPECT_EQ(delivered_[2].first, 1u);
}

TEST_F(TransmitterTest, SameTickReleaseCannotInvertEdfOrder) {
  // Regression for the fuzzer-found miss (campaign seed 37, minimized to
  // two zero-slack channels sharing an uplink): a later-deadline frame
  // whose enqueue event merely ran first must not capture the idle wire.
  tx_.enqueue_rt(900, full_frame(1));  // late deadline, enqueued first
  tx_.enqueue_rt(100, full_frame(2));  // early deadline, enqueued second
  EXPECT_TRUE(sim_.run_all());
  ASSERT_EQ(delivered_.size(), 2u);
  EXPECT_EQ(delivered_[0].first, 2u);
  EXPECT_EQ(delivered_[0].second, 100u);  // starts at tick 0 regardless
  EXPECT_EQ(delivered_[1].first, 1u);
}

TEST_F(TransmitterTest, RtHasStrictPriorityOverBestEffort) {
  // All enqueued at the same tick: strict class priority decides first (RT
  // before BE), then FCFS within best-effort. Enqueue order within the tick
  // grants nothing.
  tx_.enqueue_best_effort(full_frame(10));
  tx_.enqueue_best_effort(full_frame(11));
  tx_.enqueue_rt(500, full_frame(1));
  EXPECT_TRUE(sim_.run_all());
  ASSERT_EQ(delivered_.size(), 3u);
  EXPECT_EQ(delivered_[0].first, 1u);
  EXPECT_EQ(delivered_[1].first, 10u);
  EXPECT_EQ(delivered_[2].first, 11u);
}

TEST_F(TransmitterTest, RtCannotAbortBestEffortFrameInFlight) {
  // Non-preemption unchanged: once a BE frame holds the wire, a later RT
  // arrival waits for it (the one-frame blocking folded into T_latency).
  tx_.enqueue_best_effort(full_frame(10));
  EXPECT_TRUE(sim_.run_until(0));  // arbitration grants the wire to the BE frame
  tx_.enqueue_rt(500, full_frame(1));
  EXPECT_TRUE(sim_.run_all());
  ASSERT_EQ(delivered_.size(), 2u);
  EXPECT_EQ(delivered_[0].first, 10u);
  EXPECT_EQ(delivered_[1].first, 1u);
  EXPECT_EQ(delivered_[1].second, 200u);
}

TEST_F(TransmitterTest, NonPreemptionBoundsRtBlockingToOneFrame) {
  // Worst case the paper folds into T_latency: one max-size BE frame.
  tx_.enqueue_best_effort(full_frame(10));
  EXPECT_TRUE(sim_.run_until(1));  // BE transmission starts at t=0
  tx_.enqueue_rt(99999, full_frame(1));
  EXPECT_TRUE(sim_.run_all());
  ASSERT_EQ(delivered_.size(), 2u);
  EXPECT_EQ(delivered_[1].first, 1u);
  // RT waited at most one slot: delivered by 2 slots total.
  EXPECT_EQ(delivered_[1].second, 200u);
}

TEST_F(TransmitterTest, ShortFramesTakeProportionalTime) {
  net::EthernetHeader ethernet;
  ethernet.source = node_mac(NodeId{0});
  ethernet.destination = node_mac(NodeId{1});
  ethernet.ether_type = net::EtherType::kIpv4;
  ByteWriter w;
  ethernet.serialize(w);
  auto tiny = SimFrame::make(1, std::move(w).take(), 0, 0, NodeId{0});
  const Tick expected = config_.transmission_ticks(tiny.wire_bytes());
  EXPECT_LT(expected, config_.ticks_per_slot);
  EXPECT_GT(expected, 0u);

  tx_.enqueue_best_effort(std::move(tiny));
  EXPECT_TRUE(sim_.run_all());
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].second, expected);
}

TEST_F(TransmitterTest, StatsCountClassesAndBusyTime) {
  tx_.enqueue_rt(100, full_frame(1));
  tx_.enqueue_best_effort(full_frame(2));
  EXPECT_TRUE(sim_.run_all());
  const auto& stats = tx_.stats();
  EXPECT_EQ(stats.rt_frames_sent, 1u);
  EXPECT_EQ(stats.best_effort_frames_sent, 1u);
  EXPECT_EQ(stats.busy_ticks, 200u);
  EXPECT_GE(stats.max_rt_queue_depth, 1u);
}

TEST_F(TransmitterTest, BacklogAccessors) {
  tx_.enqueue_rt(100, full_frame(1));
  tx_.enqueue_rt(200, full_frame(2));
  tx_.enqueue_best_effort(full_frame(3));
  EXPECT_TRUE(sim_.run_until(0));  // same-tick arbitration starts frame 1
  EXPECT_TRUE(tx_.busy());
  EXPECT_EQ(tx_.rt_backlog(), 1u);
  EXPECT_EQ(tx_.best_effort_backlog(), 1u);
  EXPECT_TRUE(sim_.run_all());
  EXPECT_FALSE(tx_.busy());
  EXPECT_EQ(tx_.rt_backlog(), 0u);
}

TEST(TransmitterBounded, DropsCountVisible) {
  SimConfig config{.ticks_per_slot = 10};
  Simulator sim;
  std::vector<std::uint64_t> delivered;
  Transmitter tx(sim, config, "tx",
                 Transmitter::Sink::custom(
                     [](void* context, const SimFrame& frame, Tick) {
                       static_cast<std::vector<std::uint64_t>*>(context)
                           ->push_back(frame.id);
                     },
                     &delivered),
                 /*best_effort_depth=*/1);
  net::EthernetHeader ethernet;
  ethernet.source = node_mac(NodeId{0});
  ethernet.destination = node_mac(NodeId{1});
  ethernet.ether_type = net::EtherType::kIpv4;
  auto make = [&](std::uint64_t id) {
    ByteWriter w;
    ethernet.serialize(w);
    return SimFrame::make(id, std::move(w).take(), 1500, sim.now(), NodeId{0});
  };
  tx.enqueue_best_effort(make(1));
  EXPECT_TRUE(sim.run_until(0));                 // arbitration puts frame 1 in flight
  tx.enqueue_best_effort(make(2));  // queued
  tx.enqueue_best_effort(make(3));  // dropped
  EXPECT_TRUE(sim.run_all());
  EXPECT_EQ(delivered.size(), 2u);
  EXPECT_EQ(tx.best_effort_dropped(), 1u);
}

}  // namespace
}  // namespace rtether::sim
