#include "common/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace rtether {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform(42, 42), 42u);
  }
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.uniform(0, 9));
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformRoughlyUnbiased) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int draws = 100'000;
  for (int i = 0; i < draws; ++i) {
    ++counts[rng.uniform(0, 9)];
  }
  for (const int c : counts) {
    // Expected 10000 per bucket; 4 sigma ≈ 380.
    EXPECT_NEAR(c, draws / 10, 500);
  }
}

TEST(Rng, UniformRealHalfOpen) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits, 30'000, 700);
}

TEST(Rng, ExponentialMean) {
  Rng rng(29);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.exponential(50.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 50.0, 1.5);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleEmptyAndSingleton) {
  Rng rng(37);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(Rng, PickReturnsElement) {
  Rng rng(41);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int p = rng.pick(v);
    EXPECT_TRUE(p == 10 || p == 20 || p == 30);
  }
}

TEST(SplitMix, KnownSequenceIsStable) {
  // Regression pin: the expansion of seed 0 must never change, or every
  // experiment's "seeded" workload silently changes.
  SplitMix64 sm(0);
  const auto first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.next());
  EXPECT_NE(first, sm.next());
}

}  // namespace
}  // namespace rtether
