#include "edf/hyperperiod.hpp"

#include <gtest/gtest.h>

namespace rtether::edf {
namespace {

PseudoTask task(std::uint16_t id, Slot period, Slot capacity, Slot deadline) {
  return PseudoTask{ChannelId(id), period, capacity, deadline};
}

TEST(Hyperperiod, EmptySetIsOne) {
  const TaskSet set;
  EXPECT_EQ(hyperperiod(set), 1u);
}

TEST(Hyperperiod, SingleTask) {
  TaskSet set;
  set.add(task(1, 100, 3, 40));
  EXPECT_EQ(hyperperiod(set), 100u);
}

TEST(Hyperperiod, HarmonicPeriods) {
  TaskSet set;
  set.add(task(1, 10, 1, 10));
  set.add(task(2, 20, 1, 20));
  set.add(task(3, 40, 1, 40));
  EXPECT_EQ(hyperperiod(set), 40u);
}

TEST(Hyperperiod, CoprimePeriods) {
  TaskSet set;
  set.add(task(1, 7, 1, 7));
  set.add(task(2, 11, 1, 11));
  set.add(task(3, 13, 1, 13));
  EXPECT_EQ(hyperperiod(set), 7u * 11 * 13);
}

TEST(Hyperperiod, OverflowReported) {
  TaskSet set;
  // Large pairwise-coprime periods whose lcm exceeds 2^64 (C = P keeps the
  // per-task utilization integral).
  const Slot p1 = (Slot{1} << 31) - 1;  // Mersenne prime
  const Slot p2 = (Slot{1} << 31) - 99;
  const Slot p3 = (Slot{1} << 31) - 105;
  set.add(task(1, p1, p1, p1));
  set.add(task(2, p2, p2, p2));
  set.add(task(3, p3, p3, p3));
  EXPECT_FALSE(hyperperiod(set).has_value());
}

TEST(Hyperperiod, IdenticalPeriodsDoNotGrow) {
  TaskSet set;
  for (std::uint16_t i = 1; i <= 60; ++i) {
    set.add(task(i, 100, 1, 40));
  }
  EXPECT_EQ(hyperperiod(set), 100u);
}

}  // namespace
}  // namespace rtether::edf
