#include "scenario/generator.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/random.hpp"
#include "traffic/distribution.hpp"
#include "traffic/master_slave.hpp"
#include "traffic/uniform.hpp"

namespace rtether::scenario {

namespace {

/// Workload families the fuzzer draws from.
enum class WorkloadStyle : std::uint8_t {
  kUniform,      ///< symmetric peer-to-peer (the ablation control)
  kMasterSlave,  ///< the paper's industrial pattern (bottleneck links)
  kBursty,       ///< uniform RT + heavy bursty best-effort cross-traffic
  kChurn,        ///< admit/release interleaving dominates
};

traffic::SlotDistribution random_period(Rng& rng) {
  switch (rng.index(4)) {
    case 0:
      return traffic::SlotDistribution::choice({20, 40, 80});
    case 1:
      return traffic::SlotDistribution::choice({50, 100, 200});
    case 2:
      return traffic::SlotDistribution::fixed(
          static_cast<Slot>(25 * (1 + rng.index(6))));
    default:
      return traffic::SlotDistribution::uniform(
          10, static_cast<Slot>(60 + rng.index(140)));
  }
}

traffic::SlotDistribution random_capacity(Rng& rng) {
  return traffic::SlotDistribution::uniform(
      1, static_cast<Slot>(1 + rng.index(4)));
}

traffic::SlotDistribution random_deadline(Rng& rng, Slot max_capacity,
                                          Slot min_period) {
  // Anchored at the structural floor 2C (Eq 18.8/18.9); the upper end
  // sweeps from barely-admissible to comfortably loose relative to the
  // period, exactly the band Fig 18.5 explores.
  const Slot floor = 2 * max_capacity;
  switch (rng.index(3)) {
    case 0:  // tight: saturates the partitioner's room to maneuver
      return traffic::SlotDistribution::uniform(floor,
                                                floor + 2 + rng.index(8));
    case 1:  // the paper's fixed mid-band deadline
      return traffic::SlotDistribution::fixed(
          std::max<Slot>(floor, 20 + 10 * rng.index(4)));
    default:  // loose: up to one period
      return traffic::SlotDistribution::uniform(
          floor, std::max<Slot>(floor + 1, min_period));
  }
}

/// A structurally broken spec for the rejection paths: zero capacity,
/// capacity above period, or a deadline below the 2C store-and-forward
/// floor — each rejected as kInvalidSpec by every engine.
core::ChannelSpec invalid_spec(Rng& rng, std::uint32_t nodes) {
  core::ChannelSpec spec;
  spec.source = NodeId{static_cast<std::uint32_t>(rng.index(nodes))};
  spec.destination = NodeId{static_cast<std::uint32_t>(rng.index(nodes))};
  spec.period = 50;
  switch (rng.index(3)) {
    case 0:
      spec.capacity = 0;
      spec.deadline = 10;
      break;
    case 1:
      spec.capacity = 60;  // > period
      spec.deadline = 200;
      break;
    default:
      spec.capacity = 4;
      spec.deadline = 2 * 4 - 1;  // d < 2C
      break;
  }
  return spec;
}

}  // namespace

ScenarioSpec generate_scenario(const GeneratorConfig& config,
                               std::uint64_t seed) {
  RTETHER_ASSERT(config.min_nodes >= 2 && config.max_nodes >= config.min_nodes);
  Rng rng(seed);
  ScenarioSpec spec;
  spec.seed = seed;
  spec.name = "fuzz-" + std::to_string(seed);

  // Fault plans are defined over the simulated star wire, so the
  // fault-heavy profile never draws a multi-switch topology. (Its seed
  // expansion is free to diverge from kMixed; the other profiles' streams
  // must stay byte-identical across releases.)
  const bool fault_heavy = config.profile == GeneratorProfile::kFaultHeavy;
  // The TT profile is star-bound too: gate synthesis has no multihop
  // generalization. Like fault-heavy, its seed expansion may diverge.
  const bool time_triggered =
      config.profile == GeneratorProfile::kTimeTriggered;
  // The fabric profile always draws a simulated multi-switch topology;
  // its seed expansion diverges like the other special profiles'.
  const bool fabric = config.profile == GeneratorProfile::kFabric;

  // --- Topology ----------------------------------------------------------
  spec.topology.nodes = static_cast<std::uint32_t>(
      config.min_nodes + rng.index(config.max_nodes - config.min_nodes + 1));
  if (fabric) {
    RTETHER_ASSERT_MSG(config.max_switches >= 2,
                       "the fabric profile needs at least two switches");
    spec.topology.kind = rng.bernoulli(0.5) ? TopologyKind::kSwitchLine
                                            : TopologyKind::kSwitchTree;
    spec.topology.switches = static_cast<std::uint32_t>(
        2 + rng.index(config.max_switches - 1));
    spec.topology.nodes =
        std::max(spec.topology.nodes, spec.topology.switches);
  } else if (!fault_heavy && !time_triggered && config.max_switches >= 2 &&
      rng.bernoulli(config.multiswitch_probability)) {
    spec.topology.kind = rng.bernoulli(0.5) ? TopologyKind::kSwitchLine
                                            : TopologyKind::kSwitchTree;
    spec.topology.switches = static_cast<std::uint32_t>(
        2 + rng.index(config.max_switches - 1));
    // Every switch needs at least one node for round-robin attachment to
    // produce the advertised shape.
    spec.topology.nodes =
        std::max(spec.topology.nodes, spec.topology.switches);
  } else {
    spec.topology.kind = TopologyKind::kStar;
    spec.topology.switches = 1;
  }
  const std::uint32_t nodes = spec.topology.nodes;

  // --- Scheme ------------------------------------------------------------
  if (time_triggered) {
    spec.scheme = "TT";
  } else if (spec.topology.kind == TopologyKind::kStar) {
    // ADPS is the paper's recommendation — weight it; the others keep the
    // alternative partitioners honest.
    static const std::vector<std::string> kSchemes = {
        "ADPS", "ADPS", "SDPS", "UDPS", "Search"};
    spec.scheme = rng.pick(kSchemes);
  } else {
    // The multihop path implements the SDPS/ADPS k-hop generalizations.
    spec.scheme = rng.bernoulli(0.5) ? "ADPS" : "SDPS";
  }

  // --- Workload ----------------------------------------------------------
  // The style die is rolled for every profile so kMixed seeds keep their
  // historical expansion; churn-heavy simply overrides the outcome.
  auto style = static_cast<WorkloadStyle>(rng.index(4));
  const bool churn_heavy = config.profile == GeneratorProfile::kChurnHeavy;
  if (churn_heavy) {
    style = WorkloadStyle::kChurn;
  }
  const std::size_t op_count =
      config.min_ops + rng.index(config.max_ops - config.min_ops + 1);

  const auto period = random_period(rng);
  const auto capacity = fabric ? traffic::SlotDistribution::uniform(1, 2)
                               : random_capacity(rng);
  // Fabric routes span up to switches+1 hops and every hop needs a
  // capacity-sized budget, so the deadline floor scales with the fabric
  // diameter (star scenarios keep the historical 2C anchor).
  const Slot fabric_floor =
      2 * capacity.max_value() * (spec.topology.switches + 1);
  const auto deadline =
      fabric ? traffic::SlotDistribution::uniform(
                   fabric_floor,
                   fabric_floor + 20 + static_cast<Slot>(rng.index(40)))
             : random_deadline(rng, capacity.max_value(), period.min_value());

  // Churn probability: how often an op releases instead of admitting.
  double release_probability = 0.15;
  if (style == WorkloadStyle::kChurn) release_probability = 0.45;
  if (churn_heavy) release_probability = 0.5;

  // Spec streams come from the traffic models so the fuzzer exercises the
  // same generators the paper experiments use.
  traffic::UniformConfig uniform_config;
  uniform_config.nodes = nodes;
  uniform_config.period = period;
  uniform_config.capacity = capacity;
  uniform_config.deadline = deadline;
  traffic::UniformWorkload uniform(uniform_config, rng.next_u64());

  traffic::MasterSlaveConfig ms_config;
  ms_config.masters =
      static_cast<std::uint32_t>(1 + rng.index(std::max(1U, nodes / 4)));
  ms_config.slaves = nodes - ms_config.masters;
  ms_config.direction = static_cast<traffic::FlowDirection>(rng.index(3));
  ms_config.period = period;
  ms_config.capacity = capacity;
  ms_config.deadline = deadline;
  traffic::MasterSlaveWorkload master_slave(ms_config, rng.next_u64());

  const bool use_master_slave =
      style == WorkloadStyle::kMasterSlave && ms_config.slaves > 0;

  // Indices (into spec.ops) of admit ops, used to aim releases; an entry is
  // not removed on release, so double-teardown happens naturally. The
  // churn-heavy profile aims main-path releases at *live* admits only, so
  // steady state holds the link load near saturation instead of draining.
  std::vector<std::uint32_t> admits;
  std::vector<std::uint32_t> live_admits;
  std::vector<std::uint32_t> released;
  for (std::size_t i = 0; i < op_count; ++i) {
    const auto& victims = churn_heavy ? live_admits : admits;
    const bool release =
        !victims.empty() && rng.bernoulli(release_probability);
    if (release) {
      if (config.allow_negative_paths && rng.bernoulli(0.12)) {
        // Bogus teardown: an ID no engine ever assigned, or ID 0.
        spec.ops.push_back(ScenarioOp::release_raw(
            rng.bernoulli(0.3) ? std::uint16_t{0}
                               : static_cast<std::uint16_t>(
                                     20'000 + rng.index(1'000))));
      } else if (!released.empty() && config.allow_negative_paths &&
                 rng.bernoulli(0.2)) {
        // Double release: tear down a channel already torn down.
        spec.ops.push_back(ScenarioOp::release_of(rng.pick(released)));
      } else {
        const std::uint32_t victim = rng.pick(victims);
        spec.ops.push_back(ScenarioOp::release_of(victim));
        released.push_back(victim);
        const auto live = std::find(live_admits.begin(), live_admits.end(),
                                    victim);
        if (live != live_admits.end()) {
          live_admits.erase(live);
        }
      }
      continue;
    }

    core::ChannelSpec request;
    if (config.allow_negative_paths && rng.bernoulli(0.06)) {
      request = invalid_spec(rng, nodes);
    } else if (config.allow_negative_paths && rng.bernoulli(0.04)) {
      request = uniform.next();
      request.destination = NodeId{nodes + static_cast<std::uint32_t>(
                                               rng.index(3))};  // unknown
    } else {
      request = use_master_slave ? master_slave.next() : uniform.next();
      if (request.source == request.destination) {
        // Self-loops are legal analytically but pointless traffic; remap.
        request.destination =
            NodeId{(request.destination.value() + 1) % nodes};
      }
      if (fabric && rng.bernoulli(0.6)) {
        // Bias the pair cross-switch (round-robin attachment: node n sits
        // at switch n % switches) so trunks carry real traffic.
        std::uint32_t destination = request.destination.value();
        while (destination % spec.topology.switches ==
               request.source.value() % spec.topology.switches) {
          destination = (destination + 1) % nodes;
        }
        request.destination = NodeId{destination};
      }
    }
    admits.push_back(static_cast<std::uint32_t>(spec.ops.size()));
    live_admits.push_back(static_cast<std::uint32_t>(spec.ops.size()));
    spec.ops.push_back(ScenarioOp::admit(request));
  }

  // --- Simulation phase --------------------------------------------------
  // Star scenarios simulate through the wire stack; fabric-profile
  // scenarios through the partitioned parallel kernel. Incidentally
  // multi-switch kMixed scenarios stay analytic (their historical
  // expansion predates the fabric simulation).
  spec.simulate = spec.topology.kind == TopologyKind::kStar || fabric;
  spec.run_slots = 100 + rng.index(config.max_run_slots >= 100
                                       ? config.max_run_slots - 99
                                       : 1);
  spec.ticks_per_slot = rng.bernoulli(0.25) ? 64 : 16;
  spec.with_best_effort =
      config.allow_best_effort &&
      (style == WorkloadStyle::kBursty || rng.bernoulli(0.2));
  if (spec.with_best_effort) {
    spec.best_effort_load = 0.2 + 0.6 * rng.uniform_real();
    spec.bursty_best_effort =
        style == WorkloadStyle::kBursty || rng.bernoulli(0.3);
  }

  // --- Fault plan (fault-heavy profile only) -----------------------------
  // Drawn last so the dice above keep their historical meaning; the run is
  // stretched so every window has room to open, act and close.
  if (fault_heavy) {
    spec.run_slots = std::max<Slot>(spec.run_slots, 200);
    const std::size_t fault_count = 1 + rng.index(3);
    bool structural_used = false;
    for (std::size_t f = 0; f < fault_count; ++f) {
      sim::FaultEvent fault;
      auto kind = static_cast<sim::FaultKind>(rng.index(sim::kFaultKindCount));
      const bool structural = kind == sim::FaultKind::kSwitchReboot ||
                              kind == sim::FaultKind::kNodeCrash;
      if (structural && structural_used) {
        // At most one structural fault per scenario (the runner segments
        // the run around it exactly once).
        kind = sim::FaultKind::kFrameLoss;
      }
      fault.kind = kind;
      fault.node = NodeId{static_cast<std::uint32_t>(rng.index(nodes))};
      fault.at_slot = 10 + rng.index(spec.run_slots / 2);
      switch (kind) {
        case sim::FaultKind::kLinkDown:
          fault.duration_slots = 20 + rng.index(spec.run_slots / 3);
          fault.downlink = rng.bernoulli(0.5);
          break;
        case sim::FaultKind::kFrameLoss:
        case sim::FaultKind::kFrameCorrupt:
          fault.duration_slots = 20 + rng.index(spec.run_slots / 3);
          fault.downlink = rng.bernoulli(0.5);
          fault.probability = 0.05 + 0.45 * rng.uniform_real();
          break;
        case sim::FaultKind::kSwitchReboot:
        case sim::FaultKind::kNodeCrash:
          structural_used = true;
          break;
        case sim::FaultKind::kMgmtDelay:
          fault.at_slot = 0;  // whole-run; sorts first
          fault.delay_ticks = 1 + rng.index(3 * spec.ticks_per_slot);
          break;
      }
      spec.faults.push_back(fault);
    }
    std::stable_sort(spec.faults.begin(), spec.faults.end(),
                     [](const sim::FaultEvent& a, const sim::FaultEvent& b) {
                       return a.at_slot < b.at_slot;
                     });
  }

  // --- TT fault garnish (time-triggered profile only) --------------------
  // A third of TT scenarios carry a windowed fault so the campaign also
  // exercises the fault-scoped relaxation of the zero-jitter contract
  // (dropped frames perturb position bookkeeping; misses stay forbidden).
  // Structural reboot/crash faults are excluded: the runner rejects them
  // for TT as malformed.
  if (time_triggered && rng.bernoulli(1.0 / 3.0)) {
    spec.run_slots = std::max<Slot>(spec.run_slots, 200);
    sim::FaultEvent fault;
    fault.kind = rng.bernoulli(0.5) ? sim::FaultKind::kFrameLoss
                                    : sim::FaultKind::kFrameCorrupt;
    fault.node = NodeId{static_cast<std::uint32_t>(rng.index(nodes))};
    fault.at_slot = 10 + rng.index(spec.run_slots / 2);
    fault.duration_slots = 20 + rng.index(spec.run_slots / 3);
    fault.downlink = rng.bernoulli(0.5);
    fault.probability = 0.05 + 0.45 * rng.uniform_real();
    spec.faults.push_back(fault);
  }

  // --- Fabric fault garnish (fabric profile only) ------------------------
  // A third of fabric scenarios carry one windowed fault on a node link,
  // exercising the fabric's fault hooks and the survival contract
  // (structural kinds stay star-only: the fabric has no establishment
  // protocol to recover through).
  if (fabric && rng.bernoulli(1.0 / 3.0)) {
    spec.run_slots = std::max<Slot>(spec.run_slots, 200);
    sim::FaultEvent fault;
    const auto die = rng.index(3);
    fault.kind = die == 0   ? sim::FaultKind::kLinkDown
                 : die == 1 ? sim::FaultKind::kFrameLoss
                            : sim::FaultKind::kFrameCorrupt;
    fault.node = NodeId{static_cast<std::uint32_t>(rng.index(nodes))};
    fault.at_slot = 10 + rng.index(spec.run_slots / 2);
    fault.duration_slots = 20 + rng.index(spec.run_slots / 3);
    fault.downlink = rng.bernoulli(0.5);
    if (fault.kind != sim::FaultKind::kLinkDown) {
      fault.probability = 0.05 + 0.45 * rng.uniform_real();
    }
    spec.faults.push_back(fault);
  }

  RTETHER_ASSERT_MSG(spec.well_formed(), "generator produced malformed spec");
  return spec;
}

}  // namespace rtether::scenario
