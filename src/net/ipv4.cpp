#include "net/ipv4.hpp"

#include <array>

#include "common/assert.hpp"

namespace rtether::net {

std::uint16_t internet_checksum(std::span<const std::uint8_t> bytes) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < bytes.size(); i += 2) {
    sum += static_cast<std::uint32_t>(bytes[i]) << 8 | bytes[i + 1];
  }
  if (i < bytes.size()) {
    sum += static_cast<std::uint32_t>(bytes[i]) << 8;
  }
  while ((sum >> 16) != 0) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

void Ipv4Header::serialize(ByteWriter& out) const {
  // Fixed-size stack buffer and an arithmetic checksum over the header
  // words (no second byte pass): this runs once per simulated frame on
  // the kernel's allocation-free hot path. Equivalent to
  // internet_checksum() over the serialized bytes — the parse path
  // verifies exactly that, and tests pin the round trip.
  const std::uint32_t src = source.value();
  const std::uint32_t dst = destination.value();
  std::uint32_t sum = (std::uint32_t{0x45} << 8 | tos) + total_length +
                      identification +
                      (std::uint32_t{ttl} << 8 |
                       static_cast<std::uint8_t>(protocol)) +
                      (src >> 16) + (src & 0xffff) + (dst >> 16) +
                      (dst & 0xffff);
  while ((sum >> 16) != 0) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  const auto checksum = static_cast<std::uint16_t>(~sum & 0xffff);

  std::array<std::uint8_t, kWireSize> bytes{};
  bytes[0] = 0x45;  // version 4, IHL 5
  bytes[1] = tos;
  bytes[2] = static_cast<std::uint8_t>(total_length >> 8);
  bytes[3] = static_cast<std::uint8_t>(total_length);
  bytes[4] = static_cast<std::uint8_t>(identification >> 8);
  bytes[5] = static_cast<std::uint8_t>(identification);
  // bytes[6..7]: flags/fragment offset — never fragmented here.
  bytes[8] = ttl;
  bytes[9] = static_cast<std::uint8_t>(protocol);
  bytes[10] = static_cast<std::uint8_t>(checksum >> 8);
  bytes[11] = static_cast<std::uint8_t>(checksum);
  bytes[12] = static_cast<std::uint8_t>(src >> 24);
  bytes[13] = static_cast<std::uint8_t>(src >> 16);
  bytes[14] = static_cast<std::uint8_t>(src >> 8);
  bytes[15] = static_cast<std::uint8_t>(src);
  bytes[16] = static_cast<std::uint8_t>(dst >> 24);
  bytes[17] = static_cast<std::uint8_t>(dst >> 16);
  bytes[18] = static_cast<std::uint8_t>(dst >> 8);
  bytes[19] = static_cast<std::uint8_t>(dst);
  out.write_bytes(bytes);
}

std::optional<Ipv4Header> Ipv4Header::parse(ByteReader& in) {
  const auto raw = in.read_bytes(kWireSize);
  if (!raw) return std::nullopt;
  const std::span<const std::uint8_t> bytes = *raw;
  if (bytes[0] != 0x45) return std::nullopt;  // version 4, no options
  if (internet_checksum(bytes) != 0) return std::nullopt;

  Ipv4Header header;
  header.tos = bytes[1];
  header.total_length =
      static_cast<std::uint16_t>(bytes[2] << 8 | bytes[3]);
  header.identification =
      static_cast<std::uint16_t>(bytes[4] << 8 | bytes[5]);
  header.ttl = bytes[8];
  header.protocol = static_cast<IpProtocol>(bytes[9]);
  header.source = Ipv4Address(static_cast<std::uint32_t>(bytes[12]) << 24 |
                              static_cast<std::uint32_t>(bytes[13]) << 16 |
                              static_cast<std::uint32_t>(bytes[14]) << 8 |
                              bytes[15]);
  header.destination =
      Ipv4Address(static_cast<std::uint32_t>(bytes[16]) << 24 |
                  static_cast<std::uint32_t>(bytes[17]) << 16 |
                  static_cast<std::uint32_t>(bytes[18]) << 8 | bytes[19]);
  return header;
}

void UdpHeader::serialize(ByteWriter& out) const {
  out.write_u16(source_port);
  out.write_u16(destination_port);
  out.write_u16(length);
  out.write_u16(checksum);
}

std::optional<UdpHeader> UdpHeader::parse(ByteReader& in) {
  const auto src = in.read_u16();
  const auto dst = in.read_u16();
  const auto len = in.read_u16();
  const auto sum = in.read_u16();
  if (!src || !dst || !len || !sum) return std::nullopt;
  UdpHeader header;
  header.source_port = *src;
  header.destination_port = *dst;
  header.length = *len;
  header.checksum = *sum;
  return header;
}

std::vector<std::uint8_t> UdpDatagram::serialize() const {
  const std::size_t udp_length = UdpHeader::kWireSize + payload.size();
  const std::size_t ip_length = Ipv4Header::kWireSize + udp_length;
  RTETHER_ASSERT_MSG(ip_length <= 0xffff, "datagram exceeds IPv4 max length");

  Ipv4Header ip_fixed = ip;
  ip_fixed.total_length = static_cast<std::uint16_t>(ip_length);
  UdpHeader udp_fixed = udp;
  udp_fixed.length = static_cast<std::uint16_t>(udp_length);

  ByteWriter out(ip_length);
  ip_fixed.serialize(out);
  udp_fixed.serialize(out);
  out.write_bytes(payload);
  return std::move(out).take();
}

std::optional<UdpDatagram> UdpDatagram::parse(
    std::span<const std::uint8_t> bytes) {
  ByteReader in(bytes);
  const auto ip = Ipv4Header::parse(in);
  if (!ip || ip->protocol != IpProtocol::kUdp) return std::nullopt;
  const auto udp = UdpHeader::parse(in);
  if (!udp) return std::nullopt;
  if (udp->length < UdpHeader::kWireSize) return std::nullopt;
  const std::size_t payload_length = udp->length - UdpHeader::kWireSize;
  const auto payload = in.read_bytes(payload_length);
  if (!payload) return std::nullopt;

  UdpDatagram datagram;
  datagram.ip = *ip;
  datagram.udp = *udp;
  datagram.payload.assign(payload->begin(), payload->end());
  return datagram;
}

}  // namespace rtether::net
