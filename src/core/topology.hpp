#pragma once

/// @file topology.hpp
/// Multi-switch topologies — the paper's stated future work ("networks
/// consisting of many interconnected switches", §18.5), realized at the
/// admission-analysis level.
///
/// End-nodes attach to switches; switches interconnect by full-duplex
/// trunks. A channel's path is uplink → zero or more trunk hops → downlink;
/// each *directed* link on the path is an independent EDF "processor"
/// exactly as in the single-switch model (which is the special case of one
/// switch and a two-link path).

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rtether::core {

struct SwitchIdTag {};
/// Identifier of a switch in a multi-switch fabric.
using SwitchId = StrongId<SwitchIdTag, std::uint32_t>;

/// A directed link in the fabric.
struct LinkId {
  enum class Kind : std::uint8_t {
    kUplink,    ///< end-node → its switch (a = node id)
    kDownlink,  ///< switch → end-node (a = node id)
    kTrunk,     ///< switch a → switch b (directed)
  };

  Kind kind{Kind::kUplink};
  std::uint32_t a{0};
  std::uint32_t b{0};

  static LinkId uplink(NodeId node) {
    return {Kind::kUplink, node.value(), 0};
  }
  static LinkId downlink(NodeId node) {
    return {Kind::kDownlink, node.value(), 0};
  }
  static LinkId trunk(SwitchId from, SwitchId to) {
    return {Kind::kTrunk, from.value(), to.value()};
  }

  friend constexpr auto operator<=>(const LinkId&, const LinkId&) = default;

  [[nodiscard]] std::string to_string() const;
};

/// A star-of-stars fabric: switches in an arbitrary connected graph,
/// end-nodes attached one switch each.
class Topology {
 public:
  /// `node_count` end-nodes (initially unattached), `switch_count` switches.
  Topology(std::uint32_t node_count, std::uint32_t switch_count);

  /// Builds the paper's single-switch star over `node_count` nodes.
  static Topology single_switch(std::uint32_t node_count);

  /// A line of `switch_count` switches with `nodes_per_switch` nodes each
  /// (node IDs assigned switch-major).
  static Topology switch_line(std::uint32_t switch_count,
                              std::uint32_t nodes_per_switch);

  [[nodiscard]] std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(attachment_.size());
  }
  [[nodiscard]] std::uint32_t switch_count() const {
    return static_cast<std::uint32_t>(adjacency_.size());
  }

  /// Attaches a node to a switch (must be done for every node before
  /// routing).
  void attach_node(NodeId node, SwitchId sw);

  /// Adds a full-duplex trunk (both directed links) between two switches.
  void connect_switches(SwitchId a, SwitchId b);

  /// The switch a node is attached to.
  [[nodiscard]] std::optional<SwitchId> attachment(NodeId node) const;

  /// The directed links a channel src→dst traverses: uplink, trunk hops
  /// along a shortest switch path (BFS, deterministic tie-break by lowest
  /// switch ID), downlink. nullopt when unattached or disconnected.
  [[nodiscard]] std::optional<std::vector<LinkId>> route(NodeId src,
                                                         NodeId dst) const;

  /// Trunk neighbourhood of a switch (for diagnostics/tests).
  [[nodiscard]] const std::vector<std::uint32_t>& neighbours(
      SwitchId sw) const;

 private:
  /// attachment_[node] = switch id (or none).
  std::vector<std::optional<std::uint32_t>> attachment_;
  /// adjacency_[switch] = sorted neighbour switch ids.
  std::vector<std::vector<std::uint32_t>> adjacency_;
};

}  // namespace rtether::core

namespace std {

template <>
struct hash<rtether::core::LinkId> {
  size_t operator()(const rtether::core::LinkId& link) const noexcept {
    const auto kind = static_cast<size_t>(link.kind);
    return kind ^ (static_cast<size_t>(link.a) << 2) ^
           (static_cast<size_t>(link.b) << 34);
  }
};

}  // namespace std
