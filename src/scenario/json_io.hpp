#pragma once

/// @file json_io.hpp
/// ScenarioSpec ⇄ JSON. Serialization uses `common::JsonWriter`; parsing is
/// a small, schema-scoped recursive-descent reader (the library deliberately
/// has no general JSON dependency). The format is the corpus format checked
/// in under `tests/scenario/corpus/*.json` and documented in README.md
/// ("Fuzzing & replaying scenarios"); `schema` is versioned so corpus
/// entries stay replayable across spec evolution.

#include <string>
#include <string_view>

#include "common/expected.hpp"
#include "core/admission.hpp"
#include "scenario/spec.hpp"

namespace rtether::scenario {

/// Current corpus schema tag.
inline constexpr std::string_view kScenarioSchema = "rtether-scenario-v1";

/// Serializes a spec to a strict-JSON document (no trailing newline).
[[nodiscard]] std::string to_json(const ScenarioSpec& spec);

/// Parses a document produced by `to_json` (or hand-written to the same
/// schema). Unknown keys are rejected — a corpus entry that drifts from the
/// schema should fail loudly, not silently lose a field. The error string
/// carries an offset and a reason.
[[nodiscard]] Expected<ScenarioSpec, std::string> from_json(
    std::string_view json);

/// Writes `to_json(spec)` (plus trailing newline) to `path`.
[[nodiscard]] bool save_scenario(const ScenarioSpec& spec,
                                 const std::string& path);

/// Loads and parses a scenario file.
[[nodiscard]] Expected<ScenarioSpec, std::string> load_scenario(
    const std::string& path);

/// Typed release outcome ⇄ JSON, for campaign reports and replay fixtures:
/// `{"released": <id>}` on success, else
/// `{"rejected": {"reason": "<to_string(RejectReason)>", "detail": "..."}}`.
/// The reason string round-trips through `core::reject_reason_from_string`,
/// so a report written by one build stays machine-readable to the next.
[[nodiscard]] std::string to_json(const core::ReleaseOutcome& outcome);

/// Parses a document produced by `to_json(ReleaseOutcome)`. Unknown keys
/// and unknown reason strings are errors, same policy as the corpus format.
[[nodiscard]] Expected<core::ReleaseOutcome, std::string>
release_outcome_from_json(std::string_view json);

}  // namespace rtether::scenario
