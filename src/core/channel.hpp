#pragma once

/// @file channel.hpp
/// RT channels (paper §18.2.2): virtual connections between two end-nodes
/// with a periodic traffic contract {P_i, C_i, d_i}, all in units of
/// maximal-sized frames (slots).

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace rtether::core {

/// The traffic contract requested for an RT channel.
struct ChannelSpec {
  /// Sending end-node (its uplink carries the channel).
  NodeId source;
  /// Receiving end-node (its downlink carries the channel).
  NodeId destination;
  /// P_i — slots between message releases.
  Slot period{0};
  /// C_i — frames (slots of link time) per message.
  Slot capacity{0};
  /// d_i — relative end-to-end deadline, slots.
  Slot deadline{0};

  /// Structural validity: positive period/capacity, capacity within the
  /// period, and d_i ≥ 2·C_i — the paper's hard lower bound for a
  /// store-and-forward switch (§18.4: each of the two per-link deadlines
  /// must be at least the capacity).
  [[nodiscard]] bool valid() const {
    return period > 0 && capacity > 0 && capacity <= period &&
           deadline >= 2 * capacity;
  }

  /// Utilization contributed to each traversed link direction, as a double
  /// (reporting only).
  [[nodiscard]] double utilization() const {
    return static_cast<double>(capacity) / static_cast<double>(period);
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const ChannelSpec&, const ChannelSpec&) = default;
};

/// How a channel's end-to-end deadline is split across its two hops
/// (paper Eq 18.8: d_i = d_iu + d_id; Eq 18.9: both ≥ C_i).
struct DeadlinePartition {
  /// d_iu — uplink (source → switch) deadline budget, slots.
  Slot uplink{0};
  /// d_id — downlink (switch → destination) deadline budget, slots.
  Slot downlink{0};

  /// Eq 18.11's Upart = d_iu / d_i for reporting.
  [[nodiscard]] double uplink_fraction() const {
    const Slot total = uplink + downlink;
    return total == 0 ? 0.0
                      : static_cast<double>(uplink) /
                            static_cast<double>(total);
  }

  /// Checks Eqs 18.8/18.9 against a spec.
  [[nodiscard]] bool satisfies(const ChannelSpec& spec) const {
    return uplink + downlink == spec.deadline && uplink >= spec.capacity &&
           downlink >= spec.capacity;
  }

  friend bool operator==(const DeadlinePartition&,
                         const DeadlinePartition&) = default;
};

/// An established RT channel: the admitted spec, its network-unique ID and
/// the deadline partition it was admitted under.
struct RtChannel {
  ChannelId id;
  ChannelSpec spec;
  DeadlinePartition partition;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const RtChannel&, const RtChannel&) = default;
};

}  // namespace rtether::core
