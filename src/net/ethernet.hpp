#pragma once

/// @file ethernet.hpp
/// Ethernet II framing. The RT layer sits *above* an unmodified MAC
/// (paper §18.2.1), so frames here are standard: dst/src MAC + EtherType +
/// payload. The simulator transports these byte-exact.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "net/address.hpp"

namespace rtether::net {

/// EtherType values used by the stack.
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  /// RT-channel management frames (request/response). The paper embeds
  /// these in ordinary Ethernet frames; we give them a local EtherType so
  /// the switch can hand them to the management software (Fig 18.2, step 2).
  kRtManagement = 0x88B5,  // IEEE 802 local experimental EtherType 1
};

/// Ethernet II header (no VLAN tag; the paper's network is untagged).
struct EthernetHeader {
  MacAddress destination;
  MacAddress source;
  EtherType ether_type{EtherType::kIpv4};

  static constexpr std::size_t kWireSize = 14;

  /// Appends the 14 header bytes.
  void serialize(ByteWriter& out) const;

  /// Parses and consumes 14 bytes; nullopt if the buffer is short.
  static std::optional<EthernetHeader> parse(ByteReader& in);
};

/// A complete Ethernet frame: header + payload bytes.
struct EthernetFrame {
  EthernetHeader header;
  std::vector<std::uint8_t> payload;

  /// Serializes header + payload (no FCS: the simulator does not corrupt
  /// bits, and the analysis counts wire occupancy separately).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Parses a full frame; nullopt if shorter than a header.
  static std::optional<EthernetFrame> parse(
      std::span<const std::uint8_t> bytes);

  /// Bytes this frame occupies on the wire including preamble, FCS and
  /// inter-frame gap — what the slot-time accounting is based on.
  [[nodiscard]] std::uint64_t wire_bytes() const;
};

}  // namespace rtether::net
