#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

namespace rtether {
namespace {

TEST(ThreadPool, ZeroThreadPoolRunsShardsInlineInOrder) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  std::vector<std::size_t> order;
  pool.parallel_for_shards(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, EveryShardRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kShards = 100;
  std::vector<std::atomic<int>> hits(kShards);
  pool.parallel_for_shards(kShards, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "shard " << i;
  }
}

TEST(ThreadPool, ParallelForBlocksUntilAllShardsComplete) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  pool.parallel_for_shards(12, [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    completed.fetch_add(1, std::memory_order_relaxed);
  });
  // If parallel_for_shards returned early this would race; the fork-join
  // contract says every shard finished before we get here.
  EXPECT_EQ(completed.load(), 12);
}

TEST(ThreadPool, UnevenShardsAllComplete) {
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  pool.parallel_for_shards(9, [&](std::size_t i) {
    if (i % 3 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    total.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 0u + 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPool, ReusableAcrossManyForkJoins) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 25; ++round) {
    pool.parallel_for_shards(8, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 25 * 8);
}

TEST(ThreadPool, MorePoolThreadsThanShards) {
  ThreadPool pool(8);
  std::atomic<int> ran{0};
  pool.parallel_for_shards(2, [&](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, ZeroShardsIsANoOp) {
  ThreadPool pool(2);
  pool.parallel_for_shards(0, [&](std::size_t) { FAIL(); });
}

TEST(ThreadPool, WorkersActuallyShareTheWork) {
  // With 4 workers and shards that record their executing thread, more than
  // one distinct thread should appear (not a hard guarantee on a loaded
  // 1-core box, so only assert the bookkeeping, not the distribution).
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<std::thread::id> seen;
  pool.parallel_for_shards(32, [&](std::size_t) {
    std::lock_guard<std::mutex> lock(mutex);
    seen.push_back(std::this_thread::get_id());
  });
  EXPECT_EQ(seen.size(), 32u);
  for (const auto& id : seen) {
    EXPECT_NE(id, std::this_thread::get_id())
        << "caller must not execute shards when workers exist";
  }
}

}  // namespace
}  // namespace rtether
