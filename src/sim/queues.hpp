#pragma once

/// @file queues.hpp
/// The two output queues of Fig 18.2: a deadline-sorted queue for RT frames
/// (EDF) and a first-come-first-serve queue for everything else. One pair
/// exists per transmitter — in every end-node for its uplink and in the
/// switch for every output port.

#include <cstdint>
#include <deque>
#include <optional>
#include <queue>
#include <vector>

#include "common/types.hpp"
#include "sim/frame.hpp"

namespace rtether::sim {

/// Deadline-sorted (EDF) frame queue. The key is the scheduling deadline in
/// ticks — `release + d_iu` at the source node, the absolute end-to-end
/// deadline decoded from the IP header at the switch. Ties break FIFO by
/// enqueue order, making the schedule deterministic.
class EdfQueue {
 public:
  void push(Tick deadline_key, SimFrame frame);

  /// Removes and returns the earliest-deadline frame; nullopt when empty.
  std::optional<SimFrame> pop();

  /// Earliest deadline key without removing; nullopt when empty.
  [[nodiscard]] std::optional<Tick> peek_deadline() const;

  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }

 private:
  struct Entry {
    Tick deadline;
    std::uint64_t sequence;
    SimFrame frame;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_sequence_{0};
};

/// First-come-first-serve queue for non-real-time frames, with an optional
/// depth limit (a real switch has finite buffers; overflow drops the tail).
class FcfsQueue {
 public:
  /// `max_depth` 0 means unbounded.
  explicit FcfsQueue(std::size_t max_depth = 0) : max_depth_(max_depth) {}

  /// Enqueues; false (and drop) when the queue is full.
  bool push(SimFrame frame);

  std::optional<SimFrame> pop();

  [[nodiscard]] std::size_t size() const { return queue_.size(); }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  std::deque<SimFrame> queue_;
  std::size_t max_depth_;
  std::uint64_t dropped_{0};
};

}  // namespace rtether::sim
