#include "edf/task_set.hpp"

#include <gtest/gtest.h>

namespace rtether::edf {
namespace {

PseudoTask task(std::uint16_t id, Slot period, Slot capacity, Slot deadline) {
  return PseudoTask{ChannelId(id), period, capacity, deadline};
}

TEST(PseudoTask, Validity) {
  EXPECT_TRUE(task(1, 100, 3, 40).valid());
  EXPECT_FALSE(task(1, 0, 3, 40).valid());    // zero period
  EXPECT_FALSE(task(1, 100, 0, 40).valid());  // zero capacity
  EXPECT_FALSE(task(1, 100, 3, 0).valid());   // zero deadline
  EXPECT_FALSE(task(1, 2, 3, 40).valid());    // capacity > period
  EXPECT_TRUE(task(1, 3, 3, 3).valid());      // fully loaded is legal
}

TEST(PseudoTask, Constrained) {
  EXPECT_TRUE(task(1, 100, 3, 40).constrained());
  EXPECT_TRUE(task(1, 100, 3, 100).constrained());
  EXPECT_FALSE(task(1, 100, 3, 140).constrained());
}

TEST(TaskSet, StartsEmpty) {
  const TaskSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.utilization(), 0.0);
  EXPECT_EQ(set.total_capacity(), 0u);
  EXPECT_EQ(set.max_deadline(), 0u);
  EXPECT_EQ(set.min_deadline(), 0u);
}

TEST(TaskSet, AddAccumulatesExactUtilization) {
  TaskSet set;
  set.add(task(1, 100, 3, 40));
  set.add(task(2, 50, 10, 25));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_DOUBLE_EQ(set.utilization(), 3.0 / 100 + 10.0 / 50);
  EXPECT_EQ(set.total_capacity(), 13u);
}

TEST(TaskSet, RemoveRestoresUtilizationExactly) {
  TaskSet set;
  for (std::uint16_t i = 1; i <= 30; ++i) {
    set.add(task(i, 100, 3, 40));
  }
  for (std::uint16_t i = 1; i <= 30; ++i) {
    EXPECT_TRUE(set.remove(ChannelId(i)));
  }
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.utilization(), 0.0);  // reset exactly on empty
  EXPECT_EQ(set.total_capacity(), 0u);
}

TEST(TaskSet, RemoveUnknownReturnsFalse) {
  TaskSet set;
  set.add(task(1, 100, 3, 40));
  EXPECT_FALSE(set.remove(ChannelId(2)));
  EXPECT_EQ(set.size(), 1u);
}

TEST(TaskSet, ContainsTracksMembership) {
  TaskSet set;
  EXPECT_FALSE(set.contains(ChannelId(1)));
  set.add(task(1, 100, 3, 40));
  EXPECT_TRUE(set.contains(ChannelId(1)));
  set.remove(ChannelId(1));
  EXPECT_FALSE(set.contains(ChannelId(1)));
}

TEST(TaskSet, DuplicateChannelAsserts) {
  TaskSet set;
  set.add(task(1, 100, 3, 40));
  EXPECT_DEATH(set.add(task(1, 50, 1, 10)), "already has a task");
}

TEST(TaskSet, InvalidTaskAsserts) {
  TaskSet set;
  EXPECT_DEATH(set.add(task(1, 0, 3, 40)), "invalid pseudo-task");
}

TEST(TaskSet, AllImplicitDeadline) {
  TaskSet set;
  EXPECT_TRUE(set.all_implicit_deadline());  // vacuous
  set.add(task(1, 100, 3, 100));
  EXPECT_TRUE(set.all_implicit_deadline());
  set.add(task(2, 50, 5, 25));
  EXPECT_FALSE(set.all_implicit_deadline());
}

TEST(TaskSet, DeadlineExtremes) {
  TaskSet set;
  set.add(task(1, 100, 3, 40));
  set.add(task(2, 100, 3, 15));
  set.add(task(3, 100, 3, 90));
  EXPECT_EQ(set.max_deadline(), 90u);
  EXPECT_EQ(set.min_deadline(), 15u);
}

TEST(TaskSet, ConstructFromVector) {
  const std::vector<PseudoTask> tasks{task(1, 100, 3, 40),
                                      task(2, 200, 6, 80)};
  const TaskSet set(tasks);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_DOUBLE_EQ(set.utilization(), 3.0 / 100 + 6.0 / 200);
}

}  // namespace
}  // namespace rtether::edf
