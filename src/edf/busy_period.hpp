#pragma once

/// @file busy_period.hpp
/// The first (synchronous) busy period of paper Eq 18.4: the interval from
/// the synchronous release at the hyperperiod start until the link first
/// goes idle. Demand violations, if any, occur inside this interval, so the
/// feasibility test only needs to scan t ∈ [1, BusyPeriod(n)].

#include <optional>

#include "common/types.hpp"
#include "edf/task_set.hpp"

namespace rtether::edf {

/// Length of the first busy period: the least fixed point L > 0 of
///   W(L) = Σ ⌈L / P_i⌉ · C_i
/// computed by the standard increasing iteration from L₀ = ΣC_i.
///
/// Returns nullopt when the iteration cannot converge (utilization > 1) or
/// the intermediate workload overflows; callers run the utilization test
/// first, so nullopt means "infeasible already".
[[nodiscard]] std::optional<Slot> busy_period(const TaskSet& set);

/// Busy period of `set ∪ {extra}` without materializing the union. The
/// workload sum visits the set's tasks in storage order with `extra` last —
/// exactly the order a tentative `TaskSet::add` would produce — so the result
/// (including overflow outcomes) is identical to mutating the set.
[[nodiscard]] std::optional<Slot> busy_period_with(const TaskSet& set,
                                                   const PseudoTask& extra);

}  // namespace rtether::edf
