/// Extension E1 — the paper's future work (§18.5): "networks consisting of
/// many interconnected switches".
///
/// Acceptance sweep over multi-switch fabrics with the Fig 18.5 channel
/// parameters. Channels crossing switch boundaries traverse k > 2 links;
/// deadlines are partitioned k ways (SDPS-k equal split vs ADPS-k
/// LinkLoad-proportional). The inter-switch trunk aggregates every crossing
/// channel and becomes the bottleneck SDPS-k cannot relieve.

#include <cstdio>

#include "common/ascii_plot.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "core/multihop.hpp"

using namespace rtether;

namespace {

/// Requests flow from a node on the first switch to a node on the last
/// (worst case: every channel crosses every trunk).
std::size_t run_acceptance(const char* scheme, std::uint32_t switches,
                           std::uint32_t nodes_per_switch,
                           std::size_t requests, Slot deadline,
                           std::uint64_t seed) {
  core::PathAdmissionController controller(
      core::Topology::switch_line(switches, nodes_per_switch),
      core::make_path_partitioner(scheme));
  Rng rng(seed);
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < requests; ++i) {
    const auto src = static_cast<std::uint32_t>(rng.index(nodes_per_switch));
    const auto dst = static_cast<std::uint32_t>(
        (switches - 1) * nodes_per_switch + rng.index(nodes_per_switch));
    const core::ChannelSpec spec{NodeId{src}, NodeId{dst}, 100, 3, deadline};
    if (controller.request(spec)) ++accepted;
  }
  return accepted;
}

}  // namespace

int main() {
  std::puts("================================================================");
  std::puts("Extension E1 — multi-switch fabrics (paper §18.5 future work)");
  std::puts("switch line, 10 nodes/switch, cross-fabric channels");
  std::puts("{P=100, C=3}, 120 requested, 5 seeds");
  std::puts("================================================================");

  ConsoleTable table("E1: accepted channels vs fabric depth and deadline");
  table.set_header({"switches", "hops", "deadline", "SDPS-k", "ADPS-k",
                    "ADPS/SDPS"});

  AsciiPlot plot("E1: acceptance vs fabric depth (d=60)", "switches",
                 "accepted channels");
  PlotSeries sdps_series{"SDPS-k", {}, {}};
  PlotSeries adps_series{"ADPS-k", {}, {}};

  constexpr std::size_t kRequests = 120;
  constexpr std::uint32_t kSeeds = 5;
  for (const std::uint32_t switches : {1u, 2u, 3u, 4u, 5u}) {
    for (const Slot deadline : {40u, 60u}) {
      double sdps_total = 0;
      double adps_total = 0;
      for (std::uint32_t seed = 0; seed < kSeeds; ++seed) {
        sdps_total += static_cast<double>(run_acceptance(
            "SDPS", switches, 10, kRequests, deadline, 42 + seed));
        adps_total += static_cast<double>(run_acceptance(
            "ADPS", switches, 10, kRequests, deadline, 42 + seed));
      }
      const double sdps_mean = sdps_total / kSeeds;
      const double adps_mean = adps_total / kSeeds;
      char ratio[32];
      std::snprintf(ratio, sizeof ratio, "%.2fx",
                    sdps_mean > 0 ? adps_mean / sdps_mean : 0.0);
      table.add(switches, switches + 1, deadline, sdps_mean, adps_mean,
                std::string(ratio));
      if (deadline == 60) {
        sdps_series.x.push_back(switches);
        sdps_series.y.push_back(sdps_mean);
        adps_series.x.push_back(switches);
        adps_series.y.push_back(adps_mean);
      }
    }
  }
  table.print();
  plot.add_series(adps_series);
  plot.add_series(sdps_series);
  plot.print();
  std::puts("reading: deeper fabrics shrink per-hop budgets for both");
  std::puts("schemes, but load-proportional splitting keeps feeding the");
  std::puts("shared trunks the deadline slack the stub links don't need —");
  std::puts("the paper's ADPS insight carries over to its future-work");
  std::puts("topologies unchanged.\n");
  return 0;
}
