#include "common/json_writer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

namespace rtether {
namespace {

TEST(JsonWriter, EmptyObject) {
  JsonWriter json;
  json.begin_object().end_object();
  EXPECT_TRUE(json.complete());
  EXPECT_EQ(json.str(), "{}");
}

TEST(JsonWriter, EmptyArray) {
  JsonWriter json;
  json.begin_array().end_array();
  EXPECT_EQ(json.str(), "[]");
}

TEST(JsonWriter, FlatObjectMembers) {
  JsonWriter json;
  json.begin_object()
      .member("name", "bench")
      .member("count", std::uint64_t{42})
      .member("ratio", 0.5)
      .member("ok", true)
      .end_object();
  EXPECT_EQ(json.str(),
            "{\"name\":\"bench\",\"count\":42,\"ratio\":0.5,\"ok\":true}");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter json;
  json.begin_object();
  json.key("rows").begin_array();
  json.begin_object().member("n", 1).end_object();
  json.begin_object().member("n", 2).end_object();
  json.end_array();
  json.member("total", 2);
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\"rows\":[{\"n\":1},{\"n\":2}],\"total\":2}");
}

TEST(JsonWriter, ArrayOfScalars) {
  JsonWriter json;
  json.begin_array()
      .value(std::uint64_t{1})
      .value("two")
      .value(3.5)
      .value(false)
      .null()
      .end_array();
  EXPECT_EQ(json.str(), "[1,\"two\",3.5,false,null]");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter json;
  json.begin_object()
      .member("quote", "say \"hi\"")
      .member("back", "a\\b")
      .member("ctrl", "line1\nline2\ttab")
      .end_object();
  EXPECT_EQ(json.str(),
            "{\"quote\":\"say \\\"hi\\\"\",\"back\":\"a\\\\b\","
            "\"ctrl\":\"line1\\nline2\\ttab\"}");
}

TEST(JsonWriter, EscapesLowControlCharacters) {
  JsonWriter json;
  json.begin_array().value(std::string_view("\x01\x1f", 2)).end_array();
  EXPECT_EQ(json.str(), "[\"\\u0001\\u001f\"]");
}

TEST(JsonWriter, DoublesAreShortestRoundTrip) {
  JsonWriter json;
  json.begin_array()
      .value(3.0)
      .value(0.1)
      .value(1e300)
      .value(-2.5)
      .end_array();
  EXPECT_EQ(json.str(), "[3,0.1,1e+300,-2.5]");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter json;
  json.begin_array()
      .value(std::numeric_limits<double>::infinity())
      .value(std::numeric_limits<double>::quiet_NaN())
      .end_array();
  EXPECT_EQ(json.str(), "[null,null]");
}

TEST(JsonWriter, SignedAndNegativeIntegers) {
  JsonWriter json;
  json.begin_array().value(std::int64_t{-7}).value(-1).end_array();
  EXPECT_EQ(json.str(), "[-7,-1]");
}

TEST(JsonWriter, ScalarRoot) {
  JsonWriter json;
  json.value(std::uint64_t{9});
  EXPECT_TRUE(json.complete());
  EXPECT_EQ(json.str(), "9");
}

TEST(JsonWriter, NotCompleteUntilRootCloses) {
  JsonWriter json;
  json.begin_object().member("a", 1);
  EXPECT_FALSE(json.complete());
  json.end_object();
  EXPECT_TRUE(json.complete());
}

TEST(JsonWriter, WriteFileRoundTrips) {
  JsonWriter json;
  json.begin_object().member("k", "v").end_object();
  const std::string path =
      testing::TempDir() + "rtether_json_writer_test.json";
  ASSERT_TRUE(json.write_file(path));
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "{\"k\":\"v\"}\n");
  std::remove(path.c_str());
}

TEST(JsonWriter, WriteFileFailsOnBadPath) {
  JsonWriter json;
  json.begin_object().end_object();
  EXPECT_FALSE(json.write_file("/nonexistent-dir/x/y.json"));
}

}  // namespace
}  // namespace rtether
