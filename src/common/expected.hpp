#pragma once

/// @file expected.hpp
/// A minimal `Expected<T, E>` result type (std::expected is C++23; this
/// project targets C++20). Public library APIs return `Expected` instead of
/// throwing: admission rejection, malformed frames and protocol errors are
/// ordinary outcomes, not exceptional ones.

#include <utility>
#include <variant>

#include "common/assert.hpp"

namespace rtether {

/// Wraps an error value so `Expected`'s constructors are unambiguous even
/// when T and E are the same type.
template <typename E>
class Unexpected {
 public:
  constexpr explicit Unexpected(E error) : error_(std::move(error)) {}

  [[nodiscard]] constexpr const E& error() const& { return error_; }
  [[nodiscard]] constexpr E&& error() && { return std::move(error_); }

 private:
  E error_;
};

template <typename E>
Unexpected(E) -> Unexpected<E>;

/// Either a value of type T or an error of type E.
template <typename T, typename E>
class [[nodiscard]] Expected {
 public:
  /// Success.
  constexpr Expected(T value)  // NOLINT(google-explicit-constructor)
      : storage_(std::in_place_index<0>, std::move(value)) {}

  /// Failure.
  constexpr Expected(Unexpected<E> e)  // NOLINT(google-explicit-constructor)
      : storage_(std::in_place_index<1>, std::move(e).error()) {}

  [[nodiscard]] constexpr bool has_value() const {
    return storage_.index() == 0;
  }
  constexpr explicit operator bool() const { return has_value(); }

  [[nodiscard]] constexpr const T& value() const& {
    RTETHER_ASSERT_MSG(has_value(), "Expected::value() on error state");
    return std::get<0>(storage_);
  }
  [[nodiscard]] constexpr T& value() & {
    RTETHER_ASSERT_MSG(has_value(), "Expected::value() on error state");
    return std::get<0>(storage_);
  }
  [[nodiscard]] constexpr T&& value() && {
    RTETHER_ASSERT_MSG(has_value(), "Expected::value() on error state");
    return std::get<0>(std::move(storage_));
  }

  [[nodiscard]] constexpr const E& error() const& {
    RTETHER_ASSERT_MSG(!has_value(), "Expected::error() on value state");
    return std::get<1>(storage_);
  }

  [[nodiscard]] constexpr const T& operator*() const& { return value(); }
  [[nodiscard]] constexpr const T* operator->() const { return &value(); }

  template <typename U>
  [[nodiscard]] constexpr T value_or(U&& fallback) const& {
    return has_value() ? value() : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  std::variant<T, E> storage_;
};

/// Specialization-free void result: `Status<E>` is Expected<monostate, E>.
template <typename E>
using Status = Expected<std::monostate, E>;

/// Success value for `Status`.
inline constexpr std::monostate kOk{};

}  // namespace rtether
