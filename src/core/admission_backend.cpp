#include "core/admission_backend.hpp"

#include <array>
#include <utility>

#include "core/gate_schedule.hpp"
#include "core/parallel_admission.hpp"

namespace rtether::core {

Ticket AdmissionBackend::submit_async(const ChannelOp& op) {
  if (op.kind == ChannelOp::Kind::kAdmit) {
    return Ticket::completed(admit(op.spec));
  }
  return Ticket::completed(release(op.id));
}

namespace {

class ControllerBackend final : public AdmissionBackend {
 public:
  ControllerBackend(std::uint32_t node_count,
                    std::unique_ptr<DeadlinePartitioner> partitioner,
                    const BackendConfig& config)
      : controller_(node_count, std::move(partitioner), config.admission) {}

  [[nodiscard]] std::string name() const override { return "controller"; }

  ChurnResult submit(std::span<const ChannelOp> ops) override {
    ChurnResult result;
    for (const ChannelOp& op : ops) {
      if (op.kind == ChannelOp::Kind::kAdmit) {
        result.admissions.push_back(controller_.request(op.spec));
      } else {
        result.releases.push_back(controller_.release(op.id));
      }
    }
    return result;
  }

  [[nodiscard]] AdmitOutcome admit(const ChannelSpec& spec) override {
    return controller_.request(spec);
  }
  ReleaseOutcome release(ChannelId id) override {
    return controller_.release(id);
  }
  [[nodiscard]] const NetworkState& state() override {
    return controller_.state();
  }
  [[nodiscard]] const AdmissionStats& stats() override {
    return controller_.stats();
  }
  [[nodiscard]] const DeadlinePartitioner& partitioner() const override {
    return controller_.partitioner();
  }
  void reset() override { controller_.reset(); }

 private:
  AdmissionController controller_;
};

class BatchedBackend final : public AdmissionBackend {
 public:
  BatchedBackend(std::uint32_t node_count,
                 std::unique_ptr<DeadlinePartitioner> partitioner,
                 const BackendConfig& config)
      : engine_(node_count, std::move(partitioner), config.admission) {}

  [[nodiscard]] std::string name() const override { return "batched"; }

  ChurnResult submit(std::span<const ChannelOp> ops) override {
    // Runs of consecutive admits go through admit_batch so the batch
    // pre-pass (per-link sort + one grid sizing) stays in play.
    ChurnResult result;
    std::vector<ChannelRequest> run;
    auto flush = [&] {
      if (run.empty()) {
        return;
      }
      BatchResult batch = engine_.admit_batch(run);
      for (auto& outcome : batch.outcomes) {
        result.admissions.push_back(std::move(outcome));
      }
      run.clear();
    };
    for (const ChannelOp& op : ops) {
      if (op.kind == ChannelOp::Kind::kAdmit) {
        run.push_back(ChannelRequest{op.spec});
      } else {
        flush();
        result.releases.push_back(engine_.release(op.id));
      }
    }
    flush();
    return result;
  }

  [[nodiscard]] AdmitOutcome admit(const ChannelSpec& spec) override {
    return engine_.admit(spec);
  }
  ReleaseOutcome release(ChannelId id) override { return engine_.release(id); }
  [[nodiscard]] const NetworkState& state() override {
    return engine_.state();
  }
  [[nodiscard]] const AdmissionStats& stats() override {
    return engine_.stats();
  }
  [[nodiscard]] const DeadlinePartitioner& partitioner() const override {
    return engine_.partitioner();
  }
  void reset() override { engine_.reset(); }

 private:
  AdmissionEngine engine_;
};

class ParallelBackend final : public AdmissionBackend {
 public:
  ParallelBackend(std::uint32_t node_count,
                  std::unique_ptr<DeadlinePartitioner> partitioner,
                  const BackendConfig& config)
      : engine_(node_count, std::move(partitioner),
                ParallelAdmissionConfig{config.admission, config.threads,
                                        config.min_parallel_batch}) {}

  [[nodiscard]] std::string name() const override { return "parallel"; }

  ChurnResult submit(std::span<const ChannelOp> ops) override {
    return engine_.process(ops);
  }
  [[nodiscard]] AdmitOutcome admit(const ChannelSpec& spec) override {
    return engine_.admit(spec);
  }
  ReleaseOutcome release(ChannelId id) override { return engine_.release(id); }
  [[nodiscard]] const NetworkState& state() override {
    return engine_.state();
  }
  [[nodiscard]] const AdmissionStats& stats() override {
    return engine_.stats();
  }
  [[nodiscard]] const DeadlinePartitioner& partitioner() const override {
    return engine_.partitioner();
  }
  void reset() override { engine_.reset(); }

 private:
  ParallelAdmissionEngine engine_;
};

class ServiceBackend final : public AdmissionBackend {
 public:
  ServiceBackend(std::uint32_t node_count,
                 std::unique_ptr<DeadlinePartitioner> partitioner,
                 const BackendConfig& config)
      : service_(node_count, std::move(partitioner),
                 AdmissionServiceConfig{config.admission, config.threads,
                                        config.service_queue_capacity,
                                        config.service_queue_capacity,
                                        config.service_queue_capacity}) {}

  [[nodiscard]] std::string name() const override { return "service"; }

  ChurnResult submit(std::span<const ChannelOp> ops) override {
    return service_.submit(ops);
  }
  [[nodiscard]] AdmitOutcome admit(const ChannelSpec& spec) override {
    return service_.admit(spec);
  }
  ReleaseOutcome release(ChannelId id) override {
    return service_.release(id);
  }
  [[nodiscard]] bool supports_async() const override {
    return service_.mode() == AdmissionService::Mode::kResident;
  }
  Ticket submit_async(const ChannelOp& op) override {
    return service_.submit_async(op);
  }
  void drain() override { service_.drain(); }
  [[nodiscard]] const NetworkState& state() override {
    return service_.state();
  }
  [[nodiscard]] const AdmissionStats& stats() override {
    return service_.stats();
  }
  [[nodiscard]] const DeadlinePartitioner& partitioner() const override {
    return service_.partitioner();
  }
  void reset() override {
    // The resident workers own shard state, so an in-place table wipe is
    // not available; releasing every live channel reaches the same empty
    // state and the same smallest-free ID allocator.
    service_.drain();
    for (const RtChannel& channel : service_.state().channels()) {
      (void)service_.release(channel.id);
    }
  }

 private:
  AdmissionService service_;
};

/// The rival time-triggered scheme behind the same front door: gate-window
/// synthesis is the admission test. Decisions intentionally differ from
/// the EDF kinds — this backend is the *subject* of differential
/// conformance, not a member of the bit-identical set.
class TtBackend final : public AdmissionBackend {
 public:
  TtBackend(std::uint32_t node_count,
            std::unique_ptr<DeadlinePartitioner> partitioner,
            const BackendConfig& config)
      : admission_(node_count, std::move(partitioner), config.admission) {}

  [[nodiscard]] std::string name() const override { return "tt"; }

  ChurnResult submit(std::span<const ChannelOp> ops) override {
    ChurnResult result;
    for (const ChannelOp& op : ops) {
      if (op.kind == ChannelOp::Kind::kAdmit) {
        result.admissions.push_back(admission_.admit(op.spec));
      } else {
        result.releases.push_back(admission_.release(op.id));
      }
    }
    return result;
  }

  [[nodiscard]] AdmitOutcome admit(const ChannelSpec& spec) override {
    return admission_.admit(spec);
  }
  ReleaseOutcome release(ChannelId id) override {
    return admission_.release(id);
  }
  [[nodiscard]] const NetworkState& state() override {
    return admission_.state();
  }
  [[nodiscard]] const AdmissionStats& stats() override {
    return admission_.stats();
  }
  [[nodiscard]] const DeadlinePartitioner& partitioner() const override {
    return admission_.partitioner();
  }
  void reset() override { admission_.reset(); }
  [[nodiscard]] const GateScheduleAdmission* gate_schedule() const override {
    return &admission_;
  }

 private:
  GateScheduleAdmission admission_;
};

constexpr std::array<std::string_view, 4> kBackendKinds = {
    "controller", "batched", "parallel", "service"};

}  // namespace

std::span<const std::string_view> backend_kinds() { return kBackendKinds; }

std::unique_ptr<AdmissionBackend> make_admission_backend(
    std::string_view kind, std::uint32_t node_count,
    std::unique_ptr<DeadlinePartitioner> partitioner,
    const BackendConfig& config) {
  if (kind == "controller") {
    return std::make_unique<ControllerBackend>(node_count,
                                               std::move(partitioner), config);
  }
  if (kind == "batched") {
    return std::make_unique<BatchedBackend>(node_count, std::move(partitioner),
                                            config);
  }
  if (kind == "parallel") {
    return std::make_unique<ParallelBackend>(node_count, std::move(partitioner),
                                             config);
  }
  if (kind == "service") {
    return std::make_unique<ServiceBackend>(node_count, std::move(partitioner),
                                            config);
  }
  if (kind == "tt") {
    return std::make_unique<TtBackend>(node_count, std::move(partitioner),
                                       config);
  }
  return nullptr;
}

}  // namespace rtether::core
