#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/assert.hpp"

namespace rtether {

void RunningStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bin_count)
    : lo_(lo), hi_(hi), bins_(bin_count, 0) {
  RTETHER_ASSERT(hi > lo);
  RTETHER_ASSERT(bin_count > 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(bins_.size());
  auto idx = static_cast<std::int64_t>(std::floor((x - lo_) / width));
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(bins_.size()) - 1);
  ++bins_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lower(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(bins_.size());
  return lo_ + static_cast<double>(i) * width;
}

double Histogram::quantile(double q) const {
  RTETHER_ASSERT(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  const double width = (hi_ - lo_) / static_cast<double>(bins_.size());
  double cumulative = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double next = cumulative + static_cast<double>(bins_[i]);
    if (next >= target) {
      const double inside =
          bins_[i] == 0 ? 0.0
                        : (target - cumulative) / static_cast<double>(bins_[i]);
      return bin_lower(i) + inside * width;
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream out;
  std::uint64_t peak = 0;
  for (const auto count : bins_) {
    peak = std::max(peak, count);
  }
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const auto bar = peak == 0 ? std::size_t{0}
                               : static_cast<std::size_t>(
                                     static_cast<double>(bins_[i]) /
                                     static_cast<double>(peak) *
                                     static_cast<double>(width));
    out << "[" << bin_lower(i) << ", " << bin_lower(i + 1) << ") "
        << std::string(bar, '#') << " " << bins_[i] << "\n";
  }
  return out.str();
}

}  // namespace rtether
