#include "core/multihop.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace rtether::core {
namespace {

ChannelSpec spec(std::uint32_t src, std::uint32_t dst, Slot p, Slot c,
                 Slot d) {
  return ChannelSpec{NodeId{src}, NodeId{dst}, p, c, d};
}

TEST(Apportion, EqualWeightsSplitEvenly) {
  SymmetricPathPartitioner sdps;
  PathNetworkState state(Topology::switch_line(3, 2));
  const auto path = state.topology().route(NodeId{0}, NodeId{5});
  ASSERT_TRUE(path.has_value());  // 4 hops
  const auto budgets = sdps.split(spec(0, 5, 100, 3, 40), *path, state);
  ASSERT_EQ(budgets.size(), 4u);
  Slot sum = 0;
  for (const Slot b : budgets) {
    EXPECT_GE(b, 10u);
    EXPECT_LE(b, 10u);
    sum += b;
  }
  EXPECT_EQ(sum, 40u);
}

TEST(Apportion, RemainderDistributedDeterministically) {
  SymmetricPathPartitioner sdps;
  PathNetworkState state(Topology::switch_line(3, 1));
  const auto path = state.topology().route(NodeId{0}, NodeId{2});
  ASSERT_TRUE(path.has_value());  // 4 hops
  const auto a = sdps.split(spec(0, 2, 100, 3, 41), *path, state);
  const auto b = sdps.split(spec(0, 2, 100, 3, 41), *path, state);
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::accumulate(a.begin(), a.end(), Slot{0}), 41u);
}

TEST(Apportion, Near64BitDeadlineTerminatesAndStaysValid) {
  // Beyond 2⁵³ the weighted shares lose integer precision (ulp > 1): the
  // split must neither wrap its largest-remainder leftover into a ~2⁶⁴
  // iteration loop nor overflow the double→Slot cast — it falls back to
  // the exact even spread and still satisfies Eqs 18.8/18.9.
  SymmetricPathPartitioner sdps;
  PathNetworkState state(Topology::switch_line(3, 1));
  const auto path = state.topology().route(NodeId{0}, NodeId{2});
  ASSERT_TRUE(path.has_value());  // 4 hops
  const Slot huge = 0xffffffffffffffffULL;
  for (const Slot deadline : {huge, huge - 1, huge - 3}) {
    const auto request = spec(0, 2, huge, 1, deadline);
    const auto budgets = sdps.split(request, *path, state);
    ASSERT_EQ(budgets.size(), path->size());
    Slot sum = 0;
    for (const Slot b : budgets) {
      EXPECT_GE(b, request.capacity);
      sum += b;
    }
    EXPECT_EQ(sum, deadline);
  }
}

TEST(Apportion, MinimumDeadlineGivesCapacityEverywhere) {
  SymmetricPathPartitioner sdps;
  PathNetworkState state(Topology::switch_line(2, 1));
  const auto path = state.topology().route(NodeId{0}, NodeId{1});
  ASSERT_TRUE(path.has_value());  // 3 hops
  const auto budgets = sdps.split(spec(0, 1, 100, 5, 15), *path, state);
  EXPECT_EQ(budgets, (std::vector<Slot>{5, 5, 5}));
}

TEST(AdpsPath, HotTrunkReceivesLargerShare) {
  // Pre-load the trunk s0→s1 with channels; a new channel's trunk hop must
  // get the largest budget.
  PathNetworkState state(Topology::switch_line(2, 4));
  AsymmetricPathPartitioner adps;
  // Nodes 0..3 on s0, 4..7 on s1. Three channels 1→5, 2→6, 3→7 share the
  // trunk but different uplinks/downlinks.
  std::uint16_t next = 1;
  for (std::uint32_t i = 1; i <= 3; ++i) {
    const auto s = spec(i, 4 + i, 100, 3, 30);
    const auto path = state.topology().route(s.source, s.destination);
    MultihopChannel channel{ChannelId(next++), s, *path,
                            adps.split(s, *path, state)};
    state.add_channel(channel);
  }
  const auto s = spec(0, 4, 100, 3, 30);
  const auto path = state.topology().route(NodeId{0}, NodeId{4});
  const auto budgets = adps.split(s, *path, state);
  ASSERT_EQ(budgets.size(), 3u);
  // Weights: uplink 1, trunk 4, downlink 1 → trunk dominates.
  EXPECT_GT(budgets[1], budgets[0]);
  EXPECT_GT(budgets[1], budgets[2]);
  EXPECT_EQ(std::accumulate(budgets.begin(), budgets.end(), Slot{0}), 30u);
}

TEST(PathState, AddAndRemoveKeepLinksInSync) {
  PathNetworkState state(Topology::switch_line(2, 2));
  const auto s = spec(0, 3, 100, 3, 30);
  const auto path = state.topology().route(NodeId{0}, NodeId{3});
  MultihopChannel channel{ChannelId(1), s, *path, {10, 10, 10}};
  state.add_channel(channel);
  EXPECT_EQ(state.link_load(LinkId::uplink(NodeId{0})), 1u);
  EXPECT_EQ(state.link_load(LinkId::trunk(SwitchId{0}, SwitchId{1})), 1u);
  EXPECT_EQ(state.link_load(LinkId::downlink(NodeId{3})), 1u);
  EXPECT_EQ(state.link_load(LinkId::trunk(SwitchId{1}, SwitchId{0})), 0u);

  EXPECT_TRUE(state.remove_channel(ChannelId(1)));
  EXPECT_EQ(state.link_load(LinkId::uplink(NodeId{0})), 0u);
  EXPECT_EQ(state.link_load(LinkId::trunk(SwitchId{0}, SwitchId{1})), 0u);
  EXPECT_FALSE(state.remove_channel(ChannelId(1)));
}

TEST(PathAdmission, SingleSwitchMatchesTwoLinkController) {
  // On a single-switch topology the path controller must reproduce the
  // two-link controller's SDPS decisions exactly.
  PathAdmissionController multi(Topology::single_switch(10),
                                make_path_partitioner("SDPS"));
  AdmissionController classic(10,
                              std::make_unique<SymmetricPartitioner>());
  for (int i = 0; i < 10; ++i) {
    const auto s = spec(0, 1, 100, 3, 40);
    EXPECT_EQ(multi.request(s).has_value(),
              classic.request(s).has_value())
        << "diverged at request " << i;
  }
  EXPECT_EQ(multi.stats().accepted, classic.stats().accepted);
}

TEST(PathAdmission, TrunkBecomesTheBottleneck) {
  // 2-switch line, masters on s0 and slaves on s1: every channel crosses
  // the single trunk, which saturates first.
  PathAdmissionController controller(Topology::switch_line(2, 10),
                                     make_path_partitioner("SDPS"));
  std::size_t accepted = 0;
  for (std::uint32_t i = 0; i < 60; ++i) {
    // i-th request: node (i%10) on s0 → node 10 + (i%10) on s1.
    const auto s = spec(i % 10, 10 + (i + 3) % 10, 100, 3, 40);
    if (controller.request(s)) ++accepted;
  }
  // SDPS-3 gives the trunk ⌊40/3⌋ = 13 slots → ⌊13/3⌋ = 4 channels fit.
  EXPECT_EQ(accepted, 4u);
}

TEST(PathAdmission, AdpsRelievesTheTrunk) {
  PathAdmissionController sdps(Topology::switch_line(2, 10),
                               make_path_partitioner("SDPS"));
  PathAdmissionController adps(Topology::switch_line(2, 10),
                               make_path_partitioner("ADPS"));
  std::size_t sdps_accepted = 0;
  std::size_t adps_accepted = 0;
  for (std::uint32_t i = 0; i < 60; ++i) {
    const auto s = spec(i % 10, 10 + (i + 3) % 10, 100, 3, 40);
    if (sdps.request(s)) ++sdps_accepted;
    if (adps.request(s)) ++adps_accepted;
  }
  EXPECT_GT(adps_accepted, sdps_accepted);
}

TEST(PathAdmission, RejectsDeadlineBelowPathMinimum) {
  PathAdmissionController controller(Topology::switch_line(3, 2),
                                     make_path_partitioner("ADPS"));
  // 4-hop path (s0→s1→s2) with C=3 needs d ≥ 12.
  const auto tight = controller.request(spec(0, 5, 100, 3, 11));
  ASSERT_FALSE(tight.has_value());
  EXPECT_EQ(tight.error().reason, RejectReason::kInvalidSpec);
  EXPECT_NE(tight.error().detail.find("4-hop"), std::string::npos);
  EXPECT_TRUE(controller.request(spec(0, 5, 100, 3, 12)).has_value());
}

TEST(PathAdmission, NoRouteRejected) {
  Topology topology(2, 2);  // two islands
  topology.attach_node(NodeId{0}, SwitchId{0});
  topology.attach_node(NodeId{1}, SwitchId{1});
  PathAdmissionController controller(std::move(topology),
                                     make_path_partitioner("ADPS"));
  const auto result = controller.request(spec(0, 1, 100, 3, 40));
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().detail.find("no route"), std::string::npos);
}

TEST(PathAdmission, ReleaseRestoresTrunkCapacity) {
  PathAdmissionController controller(Topology::switch_line(2, 10),
                                     make_path_partitioner("SDPS"));
  std::vector<ChannelId> admitted;
  for (std::uint32_t i = 0; i < 60; ++i) {
    const auto s = spec(i % 10, 10 + (i + 3) % 10, 100, 3, 40);
    if (const auto r = controller.request(s)) {
      admitted.push_back(r->id);
    }
  }
  ASSERT_FALSE(admitted.empty());
  const auto again = spec(0, 13, 100, 3, 40);
  ASSERT_FALSE(controller.request(again).has_value());
  EXPECT_TRUE(controller.release(admitted.front()));
  EXPECT_TRUE(controller.request(again).has_value());
}

TEST(PathAdmission, RejectionLeavesNoResidueOnAnyHop) {
  PathAdmissionController controller(Topology::switch_line(2, 10),
                                     make_path_partitioner("SDPS"));
  for (std::uint32_t i = 0; i < 60; ++i) {
    (void)controller.request(spec(i % 10, 10 + (i + 3) % 10, 100, 3, 40));
  }
  const auto trunk_load =
      controller.state().link_load(LinkId::trunk(SwitchId{0}, SwitchId{1}));
  ASSERT_FALSE(
      controller.request(spec(0, 13, 100, 3, 40)).has_value());
  EXPECT_EQ(
      controller.state().link_load(LinkId::trunk(SwitchId{0}, SwitchId{1})),
      trunk_load);
}

TEST(MultihopChannelStruct, PartitionValidity) {
  MultihopChannel channel;
  channel.spec = spec(0, 1, 100, 3, 30);
  channel.path = {LinkId::uplink(NodeId{0}),
                  LinkId::trunk(SwitchId{0}, SwitchId{1}),
                  LinkId::downlink(NodeId{1})};
  channel.deadlines = {10, 10, 10};
  EXPECT_TRUE(channel.partition_valid());
  channel.deadlines = {10, 10, 11};  // sum ≠ d
  EXPECT_FALSE(channel.partition_valid());
  channel.deadlines = {2, 14, 14};  // hop below C
  EXPECT_FALSE(channel.partition_valid());
  channel.deadlines = {10, 20};  // arity mismatch
  EXPECT_FALSE(channel.partition_valid());
}

}  // namespace
}  // namespace rtether::core
