// Replays every checked-in corpus entry (tests/scenario/corpus/*.json)
// through the full conformance oracle as ordinary ctest cases. The corpus
// is the regression memory of the fuzzing campaigns: every scenario a
// campaign ever minimized (plus hand-picked generator seeds covering each
// topology/workload family) replays on every PR, while the randomized
// campaigns run nightly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <string>
#include <vector>

#include "scenario/json_io.hpp"
#include "scenario/runner.hpp"
#include "sim/fault.hpp"

namespace rtether::scenario {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(RTETHER_SCENARIO_CORPUS_DIR)) {
    if (entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

class CorpusReplay : public ::testing::TestWithParam<std::string> {};

std::string test_name(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = std::filesystem::path(info.param).stem().string();
  for (char& c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusReplay,
                         ::testing::ValuesIn(corpus_files()), test_name);

TEST_P(CorpusReplay, ReplaysGreen) {
  const auto spec = load_scenario(GetParam());
  ASSERT_TRUE(spec.has_value()) << spec.error();
  const auto result = run_scenario(*spec);
  EXPECT_TRUE(result.passed) << spec->summary() << "\n" << result.summary();
}

TEST(CorpusReplay, CorpusIsPopulated) {
  // The corpus must cover each topology family, every fault class (the
  // fault-<class>.json entries), and carry the regression entry for the
  // same-tick EDF arbitration fix the fuzzer forced.
  const auto files = corpus_files();
  EXPECT_GE(files.size(), 20u);
  for (std::size_t i = 0; i < sim::kFaultKindCount; ++i) {
    const std::string tag =
        std::string("fault-") + sim::to_string(static_cast<sim::FaultKind>(i));
    bool covered = false;
    for (const auto& file : files) {
      covered |= file.find(tag) != std::string::npos;
    }
    EXPECT_TRUE(covered) << "corpus lost the " << tag << " entry";
  }
  bool has_regression = false;
  for (const auto& file : files) {
    has_regression |= file.find("same-tick") != std::string::npos;
  }
  EXPECT_TRUE(has_regression)
      << "corpus lost the same-tick EDF inversion regression entry";
}

}  // namespace
}  // namespace rtether::scenario
