#include "edf/busy_period.hpp"

#include "common/math.hpp"
#include "edf/utilization.hpp"

namespace rtether::edf {

namespace {

/// One task's workload contribution ⌈L / P⌉ · C added to `total`, or nullopt
/// on overflow.
std::optional<Slot> accumulate_workload(Slot total, const PseudoTask& task,
                                        Slot length) {
  const auto jobs = ceil_div(length, task.period);
  const auto contribution = checked_mul(jobs, task.capacity);
  if (!contribution) return std::nullopt;
  return checked_add(total, *contribution);
}

/// W(L) = Σ ⌈L / P_i⌉ · C_i over set ∪ {extra}, or nullopt on overflow.
std::optional<Slot> workload(const TaskSet& set, const PseudoTask* extra,
                             Slot length) {
  Slot total = 0;
  for (const auto& task : set.tasks()) {
    const auto sum = accumulate_workload(total, task, length);
    if (!sum) return std::nullopt;
    total = *sum;
  }
  if (extra != nullptr) {
    const auto sum = accumulate_workload(total, *extra, length);
    if (!sum) return std::nullopt;
    total = *sum;
  }
  return total;
}

/// Fixed-point iteration from the synchronous backlog `initial`.
std::optional<Slot> busy_period_from(const TaskSet& set,
                                     const PseudoTask* extra, Slot initial) {
  Slot length = initial;
  for (;;) {
    const auto next = workload(set, extra, length);
    if (!next) return std::nullopt;
    if (*next == length) return length;
    length = *next;  // strictly increasing while not at the fixed point
  }
}

}  // namespace

std::optional<Slot> busy_period(const TaskSet& set) {
  if (set.empty()) {
    return Slot{0};
  }
  // With U > 1 the iteration diverges; refuse up front.
  if (utilization_exceeds_one(set)) {
    return std::nullopt;
  }
  return busy_period_from(set, nullptr, set.total_capacity());
}

std::optional<Slot> busy_period_with(const TaskSet& set,
                                     const PseudoTask& extra) {
  if (utilization_exceeds_one_with(set, extra)) {
    return std::nullopt;
  }
  const auto initial = checked_add(set.total_capacity(), extra.capacity);
  if (!initial) return std::nullopt;
  return busy_period_from(set, &extra, *initial);
}

}  // namespace rtether::edf
