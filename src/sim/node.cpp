#include "sim/node.hpp"

namespace rtether::sim {

SimNode::SimNode(Simulator& simulator, const SimConfig& config, NodeId id,
                 SimNetwork& network, std::size_t best_effort_depth)
    : id_(id),
      config_(config),
      uplink_(simulator, config, "node-" + std::to_string(id.value()) + "-up",
              Transmitter::Sink::uplink(network, id), best_effort_depth) {}

void SimNode::send_rt(Tick deadline_key, FrameIndex frame) {
  if (!config_.edf_enabled) {
    // Baseline mode: no RT layer — everything is first-come-first-serve.
    uplink_.enqueue_best_effort(frame);
    return;
  }
  uplink_.enqueue_rt(deadline_key, frame);
}

void SimNode::send_best_effort(FrameIndex frame) {
  uplink_.enqueue_best_effort(frame);
}

void SimNode::send_rt(Tick deadline_key, SimFrame frame) {
  if (!config_.edf_enabled) {
    uplink_.enqueue_best_effort(std::move(frame));
    return;
  }
  uplink_.enqueue_rt(deadline_key, std::move(frame));
}

void SimNode::send_best_effort(SimFrame frame) {
  uplink_.enqueue_best_effort(std::move(frame));
}

void SimNode::set_receiver(
    std::function<void(const SimFrame& frame, Tick now)> hook) {
  receiver_closure_ = std::move(hook);
  if (!receiver_closure_) {
    // An empty hook clears the receiver (the pre-arena contract: receive
    // is a no-op), rather than bridging to a bad_function_call.
    set_receiver(nullptr, nullptr);
    return;
  }
  set_receiver(
      [](void* context, const SimFrame& frame, Tick now) {
        (*static_cast<std::function<void(const SimFrame&, Tick)>*>(context))(
            frame, now);
      },
      &receiver_closure_);
}

}  // namespace rtether::sim
