#pragma once

/// @file periodic_sender.hpp
/// Periodic message generation on an established RT channel: one message of
/// C_i frames every P_i slots, optionally phase-shifted. This is the traffic
/// the admission analysis assumes; the validation experiments drive it.

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "proto/rt_layer.hpp"

namespace rtether::proto {

class PeriodicRtSender {
 public:
  /// Sends on `channel` (must be established for TX on `layer`) every
  /// period, starting `phase_slots` after `start()` is called.
  PeriodicRtSender(NodeRtLayer& layer, ChannelId channel, Slot phase_slots = 0);

  /// Begins the release pattern.
  void start();

  /// No further releases after the current one.
  void stop() { running_ = false; }

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] ChannelId channel() const { return channel_; }

 private:
  void schedule_release(Slot delay_slots);
  /// Fired by the kernel timer armed in `schedule_release`.
  void on_release();

  NodeRtLayer& layer_;
  ChannelId channel_;
  Slot phase_slots_;
  bool running_{false};
  std::uint64_t messages_sent_{0};
};

/// Creates and starts one sender per TX channel of `layer`. `stagger` adds
/// `k * stagger_slots` of phase to the k-th channel (a synchronous release
/// of everything is the analysis' worst case; staggering models drifting
/// devices).
[[nodiscard]] std::vector<std::unique_ptr<PeriodicRtSender>>
start_senders_for_all_channels(NodeRtLayer& layer, Slot stagger_slots = 0);

}  // namespace rtether::proto
