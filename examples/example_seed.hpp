#pragma once

/// Shared argv handling for the example programs: every example accepts an
/// optional `[seed]` first argument and prints the seed in use, so a run
/// can be replayed exactly (`example_master_slave 1234`) — the same
/// convention the scenario fuzzer uses for failing campaigns.

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace rtether::examples {

inline std::uint64_t seed_from_argv(int argc, char** argv,
                                    std::uint64_t fallback) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : fallback;
  std::printf("rng seed: %llu (pass a seed as argv[1] to replay)\n",
              static_cast<unsigned long long>(seed));
  return seed;
}

}  // namespace rtether::examples
