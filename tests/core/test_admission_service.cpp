/// Decision-identity and concurrency proof for the resident
/// `AdmissionService`: whatever interleaving the producers, the dispatcher
/// and the shard workers land on, the linearization order (the dispatcher's
/// ingest dequeue, exposed through `Ticket::sequence()`) replayed through
/// the reference `AdmissionController` must reproduce every outcome
/// bit-for-bit — accepts, rejects, channel IDs, partitions, rejection
/// reasons and diagnostic strings, and the aggregate stats. The suite runs
/// under ThreadSanitizer in CI: multi-producer storms, shutdown with
/// in-flight tickets and re-partition-under-load double as the data-race
/// net for the MPSC ring, the reorder buffer and component migration.

#include "core/admission_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.hpp"
#include "core/admission.hpp"
#include "core/partitioner.hpp"

namespace rtether::core {
namespace {

ChannelSpec spec(std::uint32_t src, std::uint32_t dst, Slot p, Slot c,
                 Slot d) {
  return ChannelSpec{NodeId{src}, NodeId{dst}, p, c, d};
}

/// Traffic inside a 4-node cell: sources and destinations stay in one
/// conflict component per cell, so the service actually shards.
constexpr std::uint32_t kCellSize = 4;

ChannelSpec cell_spec(Rng& rng, std::uint32_t cell, std::uint32_t cells) {
  static constexpr Slot kPeriods[] = {60, 80, 100, 150, 200, 300};
  const auto base = cell * kCellSize;
  const auto src = base + static_cast<std::uint32_t>(rng.index(kCellSize));
  auto dst = base + static_cast<std::uint32_t>(rng.index(kCellSize));
  if (dst == src) {
    dst = base + (dst - base + 1) % kCellSize;
  }
  const Slot period = kPeriods[rng.index(std::size(kPeriods))];
  const Slot capacity = 1 + rng.index(3);
  Slot deadline;
  if (rng.index(16) == 0) {
    deadline = rng.index(2 * capacity);  // violates d >= 2C
  } else {
    deadline = 2 * capacity + rng.index(period - 2 * capacity + 1);
  }
  (void)cells;
  return spec(src, dst, period, capacity, deadline);
}

/// Oracle-driven churn stream: release targets are the IDs the sequential
/// controller assigns, so the same concrete ops can be replayed through any
/// backend. Roughly one release per three admits once channels are live.
std::vector<ChannelOp> churn_stream(std::uint64_t seed, std::size_t count,
                                    std::uint32_t cells) {
  Rng rng(seed);
  AdmissionController oracle(cells * kCellSize, make_partitioner("SDPS"));
  std::vector<ChannelId> live;
  std::vector<ChannelOp> ops;
  ops.reserve(count);
  while (ops.size() < count) {
    if (!live.empty() && rng.index(3) == 0) {
      const auto victim = rng.index(live.size());
      const ChannelId id = live[victim];
      live[victim] = live.back();
      live.pop_back();
      ops.push_back(ChannelOp::release(id));
      EXPECT_TRUE(oracle.release(id));
      continue;
    }
    const auto cell = static_cast<std::uint32_t>(rng.index(cells));
    const ChannelSpec request = cell_spec(rng, cell, cells);
    ops.push_back(ChannelOp::admit(request));
    if (const auto outcome = oracle.request(request)) {
      live.push_back(outcome->id);
    }
  }
  return ops;
}

void expect_same_admit(const AdmitOutcome& actual, const AdmitOutcome& oracle,
                       const std::string& where) {
  ASSERT_EQ(actual.has_value(), oracle.has_value()) << where;
  if (oracle.has_value()) {
    EXPECT_EQ(*actual, *oracle) << where;
  } else {
    EXPECT_EQ(actual.error().reason, oracle.error().reason) << where;
    EXPECT_EQ(actual.error().detail, oracle.error().detail) << where;
  }
}

void expect_same_release(const ReleaseOutcome& actual,
                         const ReleaseOutcome& oracle,
                         const std::string& where) {
  ASSERT_EQ(actual.has_value(), oracle.has_value()) << where;
  if (oracle.has_value()) {
    EXPECT_EQ(*actual, *oracle) << where;
  } else {
    EXPECT_EQ(actual.error().reason, oracle.error().reason) << where;
    EXPECT_EQ(actual.error().detail, oracle.error().detail) << where;
  }
}

/// Replays `ops` through a fresh controller and checks the service's
/// ChurnResult op for op, then stats and the live-channel registries.
void expect_matches_controller(std::span<const ChannelOp> ops,
                               const ChurnResult& churn,
                               AdmissionService& service) {
  AdmissionController oracle(service.state().node_count(),
                             make_partitioner("SDPS"));
  std::size_t admit_cursor = 0;
  std::size_t release_cursor = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const std::string where = "op " + std::to_string(i);
    if (ops[i].kind == ChannelOp::Kind::kAdmit) {
      ASSERT_LT(admit_cursor, churn.admissions.size());
      expect_same_admit(churn.admissions[admit_cursor++],
                        oracle.request(ops[i].spec), where);
    } else {
      ASSERT_LT(release_cursor, churn.releases.size());
      expect_same_release(churn.releases[release_cursor++],
                          oracle.release(ops[i].id), where);
    }
  }
  const AdmissionStats& got = service.stats();
  const AdmissionStats& want = oracle.stats();
  EXPECT_EQ(got.requested, want.requested);
  EXPECT_EQ(got.accepted, want.accepted);
  EXPECT_EQ(got.rejected, want.rejected);
  EXPECT_EQ(got.released, want.released);
  EXPECT_EQ(got.feasibility_tests, want.feasibility_tests);
  EXPECT_EQ(got.demand_evaluations, want.demand_evaluations);

  auto mine = service.state().channels();
  auto theirs = oracle.state().channels();
  auto by_id = [](const RtChannel& a, const RtChannel& b) {
    return a.id < b.id;
  };
  std::sort(mine.begin(), mine.end(), by_id);
  std::sort(theirs.begin(), theirs.end(), by_id);
  ASSERT_EQ(mine.size(), theirs.size());
  for (std::size_t i = 0; i < mine.size(); ++i) {
    EXPECT_EQ(mine[i], theirs[i]);
  }
}

AdmissionServiceConfig config_with_workers(unsigned workers) {
  AdmissionServiceConfig config;
  config.workers = workers;
  return config;
}

TEST(SelectPath, PinsWhichShapeRunsWhere) {
  // The one policy point shared by ParallelAdmissionEngine and the service.
  EXPECT_EQ(select_path(edf::DemandScan::kCheckpoints, 2, 64, 64),
            AdmissionPath::kSharded);
  EXPECT_EQ(select_path(edf::DemandScan::kCheckpoints, 8, 1000, 64),
            AdmissionPath::kSharded);
  // One thread cannot shard.
  EXPECT_EQ(select_path(edf::DemandScan::kCheckpoints, 1, 1000, 64),
            AdmissionPath::kSequential);
  // The shard path requires the cached checkpoint scan.
  EXPECT_EQ(select_path(edf::DemandScan::kEverySlot, 8, 1000, 64),
            AdmissionPath::kSequential);
  EXPECT_EQ(select_path(edf::DemandScan::kExhaustive, 8, 1000, 64),
            AdmissionPath::kSequential);
  // Too little work to amortize shard setup.
  EXPECT_EQ(select_path(edf::DemandScan::kCheckpoints, 8, 63, 64),
            AdmissionPath::kSequential);
}

TEST(AdmissionService, ZeroWorkersSelectsInlineMode) {
  AdmissionService service(8, make_partitioner("SDPS"),
                           config_with_workers(0));
  EXPECT_EQ(service.mode(), AdmissionService::Mode::kInline);
  EXPECT_EQ(service.worker_count(), 0u);
}

TEST(AdmissionService, NonCheckpointScanFallsBackToInline) {
  AdmissionServiceConfig config = config_with_workers(4);
  config.admission.scan = edf::DemandScan::kEverySlot;
  AdmissionService service(8, make_partitioner("SDPS"), config);
  EXPECT_EQ(service.mode(), AdmissionService::Mode::kInline);
}

TEST(AdmissionService, ResidentModeSpawnsWorkers) {
  AdmissionService service(8, make_partitioner("SDPS"),
                           config_with_workers(2));
  EXPECT_EQ(service.mode(), AdmissionService::Mode::kResident);
  EXPECT_EQ(service.worker_count(), 2u);
}

TEST(AdmissionService, InlineModeMatchesController) {
  const auto ops = churn_stream(0x51c0, 400, 4);
  AdmissionService service(4 * kCellSize, make_partitioner("SDPS"),
                           config_with_workers(0));
  const ChurnResult churn = service.submit(ops);
  expect_matches_controller(ops, churn, service);
}

TEST(AdmissionService, ResidentSubmitMatchesController) {
  for (const unsigned workers : {1u, 2u, 4u}) {
    const auto ops = churn_stream(0xbeef + workers, 600, 6);
    AdmissionService service(6 * kCellSize, make_partitioner("SDPS"),
                             config_with_workers(workers));
    ASSERT_EQ(service.mode(), AdmissionService::Mode::kResident);
    const ChurnResult churn = service.submit(ops);
    expect_matches_controller(ops, churn, service);
  }
}

TEST(AdmissionService, SmallRingsStillCompleteEveryOp) {
  // Tiny ingest/ROB/worker rings force every backpressure path.
  const auto ops = churn_stream(0x7777, 500, 4);
  AdmissionServiceConfig config = config_with_workers(2);
  config.queue_capacity = 4;
  config.rob_capacity = 2;
  config.worker_queue_capacity = 2;
  AdmissionService service(4 * kCellSize, make_partitioner("SDPS"), config);
  const ChurnResult churn = service.submit(ops);
  expect_matches_controller(ops, churn, service);
}

TEST(AdmissionService, TicketsExposeTheLinearizationOrder) {
  const auto ops = churn_stream(0xabcd, 200, 3);
  AdmissionService service(3 * kCellSize, make_partitioner("SDPS"),
                           config_with_workers(2));
  std::vector<Ticket> tickets;
  tickets.reserve(ops.size());
  for (const ChannelOp& op : ops) {
    tickets.push_back(service.submit_async(op));
  }
  // Single producer: the dispatcher must dequeue in submission order.
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    tickets[i].wait();
    EXPECT_TRUE(tickets[i].done());
    EXPECT_EQ(tickets[i].sequence(), i);
    EXPECT_EQ(tickets[i].kind(), ops[i].kind);
  }
}

TEST(AdmissionService, ReleaseOfInflightAdmitIdWaitsForTheAdmit) {
  // The very first accepted admit gets ChannelId{1}; releasing it without
  // waiting forces the dispatcher's release hazard stall.
  AdmissionService service(kCellSize, make_partitioner("SDPS"),
                           config_with_workers(1));
  const Ticket admit = service.submit_async(
      ChannelOp::admit(spec(0, 1, 100, 2, 40)));
  const Ticket release =
      service.submit_async(ChannelOp::release(ChannelId{1}));
  release.wait();
  ASSERT_TRUE(admit.admit_outcome().has_value());
  EXPECT_EQ(admit.admit_outcome()->id, ChannelId{1});
  ASSERT_TRUE(release.release_outcome().has_value());
  EXPECT_EQ(*release.release_outcome(), ChannelId{1});
}

TEST(AdmissionService, UnknownReleaseRejectsTypedLikeTheController) {
  AdmissionService service(kCellSize, make_partitioner("SDPS"),
                           config_with_workers(1));
  // Keep an admit in flight so the hazard path (not the fast path) decides.
  (void)service.submit_async(ChannelOp::admit(spec(0, 1, 100, 2, 40)));
  const ReleaseOutcome outcome = service.release(ChannelId{999});
  AdmissionController oracle(kCellSize, make_partitioner("SDPS"));
  (void)oracle.request(spec(0, 1, 100, 2, 40));
  const ReleaseOutcome want = oracle.release(ChannelId{999});
  expect_same_release(outcome, want, "unknown release");
}

TEST(AdmissionService, ShutdownCompletesInflightTickets) {
  const auto ops = churn_stream(0xdead, 300, 4);
  std::vector<Ticket> tickets;
  {
    AdmissionService service(4 * kCellSize, make_partitioner("SDPS"),
                             config_with_workers(3));
    tickets.reserve(ops.size());
    for (const ChannelOp& op : ops) {
      tickets.push_back(service.submit_async(op));
    }
    // Destructor must drain every in-flight op before joining.
  }
  AdmissionController oracle(4 * kCellSize, make_partitioner("SDPS"));
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    ASSERT_TRUE(tickets[i].done()) << "ticket " << i;
    const std::string where = "op " + std::to_string(i);
    if (ops[i].kind == ChannelOp::Kind::kAdmit) {
      expect_same_admit(tickets[i].admit_outcome(),
                        oracle.request(ops[i].spec), where);
    } else {
      expect_same_release(tickets[i].release_outcome(),
                          oracle.release(ops[i].id), where);
    }
  }
}

TEST(AdmissionService, RepartitionUnderLoadStaysBitIdentical) {
  // Phase 1 populates six per-cell components; phase 2 admits cross-cell
  // channels that force component merges (and, once both sides have
  // worker-owned state, live migrations) while per-cell churn keeps the
  // workers busy.
  const std::uint32_t cells = 6;
  Rng rng(0x9a9a);
  AdmissionController oracle(cells * kCellSize, make_partitioner("SDPS"));
  std::vector<ChannelId> live;
  std::vector<ChannelOp> ops;
  auto push = [&](const ChannelOp& op) {
    ops.push_back(op);
    if (op.kind == ChannelOp::Kind::kAdmit) {
      if (const auto outcome = oracle.request(op.spec)) {
        live.push_back(outcome->id);
      }
    } else {
      EXPECT_TRUE(oracle.release(op.id));
    }
  };
  for (std::size_t i = 0; i < 240; ++i) {
    const auto cell = static_cast<std::uint32_t>(rng.index(cells));
    push(ChannelOp::admit(cell_spec(rng, cell, cells)));
  }
  for (std::uint32_t merge = 0; merge + 1 < cells; ++merge) {
    // Bridge cell `merge` into cell `merge + 1`.
    push(ChannelOp::admit(spec(merge * kCellSize,
                               (merge + 1) * kCellSize + 1, 300, 1, 40)));
    for (int i = 0; i < 20; ++i) {
      const auto cell = static_cast<std::uint32_t>(rng.index(cells));
      if (!live.empty() && rng.index(3) == 0) {
        const auto victim = rng.index(live.size());
        const ChannelId id = live[victim];
        live[victim] = live.back();
        live.pop_back();
        push(ChannelOp::release(id));
      } else {
        push(ChannelOp::admit(cell_spec(rng, cell, cells)));
      }
    }
  }
  AdmissionService service(cells * kCellSize, make_partitioner("SDPS"),
                           config_with_workers(4));
  const ChurnResult churn = service.submit(ops);
  EXPECT_GT(service.migrations(), 0u);
  expect_matches_controller(ops, churn, service);
}

TEST(AdmissionService, MultiProducerStormMatchesSequentialOracle) {
  // Each producer admits into its own cells and releases only channels it
  // admitted itself; the interleaving across producers is arbitrary. The
  // ticket sequence numbers recover the linearization order, and a
  // sequential replay in that order must match every outcome.
  constexpr unsigned kProducers = 4;
  constexpr std::uint32_t kCellsPerProducer = 2;
  constexpr std::size_t kOpsPerProducer = 250;
  const std::uint32_t cells = kProducers * kCellsPerProducer;
  AdmissionService service(cells * kCellSize, make_partitioner("SDPS"),
                           config_with_workers(3));

  struct Submission {
    ChannelOp op;
    Ticket ticket;
  };
  std::vector<std::vector<Submission>> per_producer(kProducers);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(0x1000 + p);
      auto& log = per_producer[p];
      log.reserve(kOpsPerProducer);
      std::vector<ChannelId> own_live;
      for (std::size_t i = 0; i < kOpsPerProducer; ++i) {
        if (!own_live.empty() && rng.index(3) == 0) {
          const auto victim = rng.index(own_live.size());
          const ChannelId id = own_live[victim];
          own_live[victim] = own_live.back();
          own_live.pop_back();
          const ChannelOp op = ChannelOp::release(id);
          log.push_back({op, service.submit_async(op)});
          continue;
        }
        const auto cell = p * kCellsPerProducer +
                          static_cast<std::uint32_t>(rng.index(
                              kCellsPerProducer));
        const ChannelOp op = ChannelOp::admit(cell_spec(rng, cell, cells));
        Ticket ticket = service.submit_async(op);
        if (rng.index(4) != 0) {
          // Usually learn the assigned ID so it can be released later;
          // sometimes leave the ticket dangling to keep ops in flight.
          ticket.wait();
          if (ticket.admit_outcome().has_value()) {
            own_live.push_back(ticket.admit_outcome()->id);
          }
        }
        log.push_back({op, std::move(ticket)});
      }
    });
  }
  for (auto& thread : producers) {
    thread.join();
  }
  service.drain();

  std::vector<const Submission*> in_order;
  for (const auto& log : per_producer) {
    for (const auto& submission : log) {
      EXPECT_TRUE(submission.ticket.done());
      in_order.push_back(&submission);
    }
  }
  std::sort(in_order.begin(), in_order.end(),
            [](const Submission* a, const Submission* b) {
              return a->ticket.sequence() < b->ticket.sequence();
            });

  AdmissionController oracle(cells * kCellSize, make_partitioner("SDPS"));
  for (std::size_t i = 0; i < in_order.size(); ++i) {
    const Submission& submission = *in_order[i];
    ASSERT_EQ(submission.ticket.sequence(), i)
        << "sequence numbers must be dense";
    const std::string where = "seq " + std::to_string(i);
    if (submission.op.kind == ChannelOp::Kind::kAdmit) {
      expect_same_admit(submission.ticket.admit_outcome(),
                        oracle.request(submission.op.spec), where);
    } else {
      expect_same_release(submission.ticket.release_outcome(),
                          oracle.release(submission.op.id), where);
    }
  }
  const AdmissionStats& got = service.stats();
  const AdmissionStats& want = oracle.stats();
  EXPECT_EQ(got.requested, want.requested);
  EXPECT_EQ(got.accepted, want.accepted);
  EXPECT_EQ(got.rejected, want.rejected);
  EXPECT_EQ(got.released, want.released);
  EXPECT_EQ(got.feasibility_tests, want.feasibility_tests);
  EXPECT_EQ(got.demand_evaluations, want.demand_evaluations);
}

TEST(AdmissionService, CompletionCallbackRunsInlineWhenAlreadyDone) {
  // Inline mode: ops complete inside submit_async, so an on_complete
  // registered afterwards must fire before it returns.
  AdmissionService service(4, make_partitioner("SDPS"),
                           config_with_workers(0));
  Ticket ticket = service.submit_async(ChannelOp::admit(spec(0, 1, 100, 2, 40)));
  ASSERT_TRUE(ticket.done());
  bool fired = false;
  ticket.on_complete([&] { fired = true; });
  EXPECT_TRUE(fired);
  EXPECT_TRUE(ticket.admit_outcome().has_value());
}

TEST(AdmissionService, CompletionCallbackSeesTheOutcome) {
  // Resident mode: the callback runs on the retiring thread after the
  // outcome is published, so it can read the verdict directly.
  AdmissionService service(4, make_partitioner("SDPS"),
                           config_with_workers(2));
  std::atomic<bool> fired{false};
  std::atomic<bool> accepted{false};
  Ticket ticket = service.submit_async(ChannelOp::admit(spec(0, 1, 100, 2, 40)));
  ticket.on_complete([&] {
    accepted.store(ticket.admit_outcome().has_value(),
                   std::memory_order_relaxed);
    fired.store(true, std::memory_order_release);
  });
  service.drain();
  ticket.wait();
  EXPECT_TRUE(fired.load(std::memory_order_acquire));
  EXPECT_TRUE(accepted.load(std::memory_order_relaxed));
}

TEST(AdmissionService, CallbackStormFiresOnceAndStaysBitIdentical) {
  // The storm re-run with completion callbacks instead of waits: every op
  // must fire its callback exactly once (whichever side of the handoff
  // wins), and the outcomes read back afterwards must still replay
  // bit-identically through the sequential oracle in ticket-sequence order.
  constexpr unsigned kProducers = 4;
  constexpr std::uint32_t kCellsPerProducer = 2;
  constexpr std::size_t kOpsPerProducer = 200;
  const std::uint32_t cells = kProducers * kCellsPerProducer;
  AdmissionService service(cells * kCellSize, make_partitioner("SDPS"),
                           config_with_workers(3));

  struct Submission {
    ChannelOp op;
    Ticket ticket;
  };
  std::vector<std::vector<Submission>> per_producer(kProducers);
  std::vector<std::atomic<int>> fire_counts(kProducers * kOpsPerProducer);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(0x2000 + p);
      auto& log = per_producer[p];
      log.reserve(kOpsPerProducer);
      std::vector<ChannelId> own_live;
      for (std::size_t i = 0; i < kOpsPerProducer; ++i) {
        std::atomic<int>& fires = fire_counts[p * kOpsPerProducer + i];
        ChannelOp op = ChannelOp::admit(cell_spec(
            rng, p * kCellsPerProducer +
                     static_cast<std::uint32_t>(rng.index(kCellsPerProducer)),
            cells));
        if (!own_live.empty() && rng.index(3) == 0) {
          const auto victim = rng.index(own_live.size());
          const ChannelId id = own_live[victim];
          own_live[victim] = own_live.back();
          own_live.pop_back();
          op = ChannelOp::release(id);
        }
        Ticket ticket = service.submit_async(op);
        if (rng.index(2) == 0) {
          // Install before completion (usually): the retiring thread wins
          // the handoff and runs the callback.
          ticket.on_complete(
              [&fires] { fires.fetch_add(1, std::memory_order_relaxed); });
        } else {
          // Install after completion: the installer runs it inline.
          ticket.wait();
          ticket.on_complete(
              [&fires] { fires.fetch_add(1, std::memory_order_relaxed); });
        }
        if (op.kind == ChannelOp::Kind::kAdmit && rng.index(4) != 0) {
          ticket.wait();
          if (ticket.admit_outcome().has_value()) {
            own_live.push_back(ticket.admit_outcome()->id);
          }
        }
        log.push_back({op, std::move(ticket)});
      }
    });
  }
  for (auto& thread : producers) {
    thread.join();
  }
  service.drain();

  std::vector<const Submission*> in_order;
  for (const auto& log : per_producer) {
    for (const auto& submission : log) {
      EXPECT_TRUE(submission.ticket.done());
      in_order.push_back(&submission);
    }
  }
  for (const auto& fires : fire_counts) {
    EXPECT_EQ(fires.load(std::memory_order_relaxed), 1);
  }
  std::sort(in_order.begin(), in_order.end(),
            [](const Submission* a, const Submission* b) {
              return a->ticket.sequence() < b->ticket.sequence();
            });
  AdmissionController oracle(cells * kCellSize, make_partitioner("SDPS"));
  for (std::size_t i = 0; i < in_order.size(); ++i) {
    const Submission& submission = *in_order[i];
    const std::string where = "seq " + std::to_string(i);
    if (submission.op.kind == ChannelOp::Kind::kAdmit) {
      expect_same_admit(submission.ticket.admit_outcome(),
                        oracle.request(submission.op.spec), where);
    } else {
      expect_same_release(submission.ticket.release_outcome(),
                          oracle.release(submission.op.id), where);
    }
  }
}

TEST(AdmissionService, DeprecatedReleaseOkWrappersStillWork) {
  // One-release compatibility shims on the pre-backend entry points.
  AdmissionController controller(4, make_partitioner("SDPS"));
  const auto outcome = controller.request(spec(0, 1, 100, 2, 40));
  ASSERT_TRUE(outcome.has_value());
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  // This test exists to keep the deprecated wrappers behaving until
  // their removal release.
  // LINT-WAIVE(deprecated-release): coverage of the deprecated shim itself.
  EXPECT_FALSE(controller.release_ok(ChannelId{999}));
  // LINT-WAIVE(deprecated-release): same compatibility coverage as above.
  EXPECT_TRUE(controller.release_ok(outcome->id));
#pragma GCC diagnostic pop
}

}  // namespace
}  // namespace rtether::core
