#include "edf/demand.hpp"

#include "common/assert.hpp"
#include "common/math.hpp"

namespace rtether::edf {

Slot task_demand(const PseudoTask& task, Slot t) {
  if (t < task.deadline) {
    return 0;
  }
  const Slot jobs = 1 + (t - task.deadline) / task.period;
  const auto contribution = checked_mul(jobs, task.capacity);
  RTETHER_ASSERT_MSG(contribution.has_value(), "demand overflow");
  return *contribution;
}

Slot demand(const TaskSet& set, Slot t) {
  Slot total = 0;
  for (const auto& task : set.tasks()) {
    const auto sum = checked_add(total, task_demand(task, t));
    RTETHER_ASSERT_MSG(sum.has_value(), "demand overflow");
    total = *sum;
  }
  return total;
}

}  // namespace rtether::edf
