#include "net/ethernet.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace rtether::net {
namespace {

EthernetHeader sample_header() {
  EthernetHeader h;
  h.destination = MacAddress::from_u48(0x0200'0000'0001ULL);
  h.source = MacAddress::from_u48(0x0200'0000'0002ULL);
  h.ether_type = EtherType::kIpv4;
  return h;
}

TEST(EthernetHeader, SerializedSizeAndLayout) {
  ByteWriter w;
  sample_header().serialize(w);
  ASSERT_EQ(w.size(), EthernetHeader::kWireSize);
  // dst(6) | src(6) | type(2), big-endian.
  EXPECT_EQ(w.bytes()[5], 0x01);
  EXPECT_EQ(w.bytes()[11], 0x02);
  EXPECT_EQ(w.bytes()[12], 0x08);
  EXPECT_EQ(w.bytes()[13], 0x00);
}

TEST(EthernetHeader, RoundTrip) {
  ByteWriter w;
  const auto original = sample_header();
  original.serialize(w);
  ByteReader r(w.bytes());
  const auto parsed = EthernetHeader::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->destination, original.destination);
  EXPECT_EQ(parsed->source, original.source);
  EXPECT_EQ(parsed->ether_type, original.ether_type);
}

TEST(EthernetHeader, ShortBufferRejected) {
  const std::vector<std::uint8_t> short_buf(13, 0);
  ByteReader r(short_buf);
  EXPECT_FALSE(EthernetHeader::parse(r).has_value());
}

TEST(EthernetFrame, RoundTripWithPayload) {
  EthernetFrame frame;
  frame.header = sample_header();
  frame.payload = {1, 2, 3, 4, 5};
  const auto bytes = frame.serialize();
  const auto parsed = EthernetFrame::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload, frame.payload);
  EXPECT_EQ(parsed->header.source, frame.header.source);
}

TEST(EthernetFrame, EmptyPayloadAllowed) {
  EthernetFrame frame;
  frame.header = sample_header();
  const auto parsed = EthernetFrame::parse(frame.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->payload.empty());
}

TEST(EthernetFrame, WireBytesFlooredAtMinimum) {
  EthernetFrame frame;
  frame.header = sample_header();
  frame.payload = {0};  // far below the 46-byte minimum payload
  EXPECT_EQ(frame.wire_bytes(), kMinFrameWireBytes);
}

TEST(EthernetFrame, WireBytesForFullFrame) {
  EthernetFrame frame;
  frame.header = sample_header();
  frame.payload.assign(1500, 0xaa);
  // 14 + 1500 + 4 FCS + 8 preamble + 12 IFG = 1538.
  EXPECT_EQ(frame.wire_bytes(), kMaxFrameWireBytes);
}

TEST(EthernetFrame, ManagementEtherTypeSurvives) {
  EthernetFrame frame;
  frame.header = sample_header();
  frame.header.ether_type = EtherType::kRtManagement;
  const auto parsed = EthernetFrame::parse(frame.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.ether_type, EtherType::kRtManagement);
}

}  // namespace
}  // namespace rtether::net
