#pragma once

/// @file forwarding.hpp
/// The switch's MAC forwarding table with source-address learning. In this
/// network the table converges during channel establishment (every node's
/// request/response traverses the switch before any RT data flows), so RT
/// frames never need flooding.

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/types.hpp"
#include "net/address.hpp"

namespace rtether::sim {

class ForwardingTable {
 public:
  /// Records that `mac` was seen on the port toward `node`. Re-learning an
  /// existing entry to a new port updates it (station moved).
  void learn(const net::MacAddress& mac, NodeId node);

  /// Port (node) for a destination MAC; nullopt when unknown.
  [[nodiscard]] std::optional<NodeId> lookup(
      const net::MacAddress& mac) const;

  [[nodiscard]] std::size_t size() const { return table_.size(); }

 private:
  std::unordered_map<net::MacAddress, NodeId> table_;
};

}  // namespace rtether::sim
