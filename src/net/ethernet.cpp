#include "net/ethernet.hpp"

#include <algorithm>
#include <array>

#include "common/units.hpp"

namespace rtether::net {

void EthernetHeader::serialize(ByteWriter& out) const {
  // One ranged append instead of 14 byte-wise pushes: this runs once per
  // simulated frame on the kernel's hot path.
  std::array<std::uint8_t, kWireSize> bytes;
  const auto& dst = destination.octets();
  const auto& src = source.octets();
  std::copy(dst.begin(), dst.end(), bytes.begin());
  std::copy(src.begin(), src.end(), bytes.begin() + 6);
  const auto type = static_cast<std::uint16_t>(ether_type);
  bytes[12] = static_cast<std::uint8_t>(type >> 8);
  bytes[13] = static_cast<std::uint8_t>(type);
  out.write_bytes(bytes);
}

std::optional<EthernetHeader> EthernetHeader::parse(ByteReader& in) {
  const auto dst = in.read_u48();
  const auto src = in.read_u48();
  const auto type = in.read_u16();
  if (!dst || !src || !type) return std::nullopt;
  EthernetHeader header;
  header.destination = MacAddress::from_u48(*dst);
  header.source = MacAddress::from_u48(*src);
  header.ether_type = static_cast<EtherType>(*type);
  return header;
}

std::vector<std::uint8_t> EthernetFrame::serialize() const {
  ByteWriter out(EthernetHeader::kWireSize + payload.size());
  header.serialize(out);
  out.write_bytes(payload);
  return std::move(out).take();
}

std::optional<EthernetFrame> EthernetFrame::parse(
    std::span<const std::uint8_t> bytes) {
  ByteReader in(bytes);
  const auto header = EthernetHeader::parse(in);
  if (!header) return std::nullopt;
  EthernetFrame frame;
  frame.header = *header;
  const auto rest = in.read_bytes(in.remaining());
  frame.payload.assign(rest->begin(), rest->end());
  return frame;
}

std::uint64_t EthernetFrame::wire_bytes() const {
  // header + payload + 4 FCS + 8 preamble/SFD + 12 IFG, floored at the
  // 64-byte minimum frame (+ preamble + IFG).
  const std::uint64_t on_wire =
      EthernetHeader::kWireSize + payload.size() + 4 + 8 + 12;
  return std::max<std::uint64_t>(on_wire, kMinFrameWireBytes);
}

}  // namespace rtether::net
