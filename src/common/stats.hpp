#pragma once

/// @file stats.hpp
/// Streaming statistics used by the simulator's measurement layer.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace rtether {

/// Single-pass mean/variance/min/max (Welford's algorithm). Numerically
/// stable for long simulation runs.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Merges another accumulator (parallel sweeps reduce partials).
  void merge(const RunningStats& other);

 private:
  std::uint64_t count_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

/// Fixed-width linear histogram over [lo, hi); out-of-range samples land in
/// saturated edge bins so no observation is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bin_count);

  void add(double x);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::size_t bin_count() const { return bins_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return bins_.at(i); }
  [[nodiscard]] double bin_lower(std::size_t i) const;

  /// Smallest x with cumulative probability ≥ q (q in [0,1]); linear
  /// interpolation inside the bin.
  [[nodiscard]] double quantile(double q) const;

  /// Compact multi-line rendering for console reports.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_{0};
};

}  // namespace rtether
