#include "sim/forwarding.hpp"

#include <gtest/gtest.h>

#include "sim/addressing.hpp"

namespace rtether::sim {
namespace {

TEST(ForwardingTable, EmptyLooksUpNothing) {
  const ForwardingTable table;
  EXPECT_FALSE(table.lookup(node_mac(NodeId{0})).has_value());
  EXPECT_EQ(table.size(), 0u);
}

TEST(ForwardingTable, LearnsAndLooksUp) {
  ForwardingTable table;
  table.learn(node_mac(NodeId{3}), NodeId{3});
  EXPECT_EQ(table.lookup(node_mac(NodeId{3})), NodeId{3});
  EXPECT_FALSE(table.lookup(node_mac(NodeId{4})).has_value());
}

TEST(ForwardingTable, RelearnMovesStation) {
  ForwardingTable table;
  const auto mac = node_mac(NodeId{7});
  table.learn(mac, NodeId{7});
  table.learn(mac, NodeId{9});  // station moved ports
  EXPECT_EQ(table.lookup(mac), NodeId{9});
  EXPECT_EQ(table.size(), 1u);
}

TEST(ForwardingTable, ManyEntries) {
  ForwardingTable table;
  for (std::uint32_t n = 0; n < 500; ++n) {
    table.learn(node_mac(NodeId{n}), NodeId{n});
  }
  EXPECT_EQ(table.size(), 500u);
  for (std::uint32_t n = 0; n < 500; ++n) {
    EXPECT_EQ(table.lookup(node_mac(NodeId{n})), NodeId{n});
  }
}

}  // namespace
}  // namespace rtether::sim
