#include "analysis/acceptance.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "core/partitioner.hpp"

namespace rtether::analysis {

std::size_t count_accepted(const std::string& scheme,
                           std::uint32_t node_count,
                           const std::vector<core::ChannelSpec>& specs,
                           const core::AdmissionConfig& admission) {
  core::AdmissionController controller(node_count,
                                       core::make_partitioner(scheme),
                                       admission);
  std::size_t accepted = 0;
  for (const auto& spec : specs) {
    if (controller.request(spec)) {
      ++accepted;
    }
  }
  return accepted;
}

AcceptanceCurve run_acceptance_sweep(const std::string& scheme,
                                     std::uint32_t node_count,
                                     const RequestStream& stream,
                                     const AcceptanceSweepConfig& config) {
  RTETHER_ASSERT(config.seeds >= 1);
  AcceptanceCurve curve;
  curve.scheme = scheme;
  curve.points.reserve(config.request_counts.size());

  for (const std::size_t requested : config.request_counts) {
    AcceptancePoint point;
    point.requested = requested;
    double sum = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    for (std::uint32_t s = 0; s < config.seeds; ++s) {
      const std::uint64_t seed = config.base_seed + s;
      const auto specs = stream(seed, requested);
      const auto accepted = static_cast<double>(
          count_accepted(scheme, node_count, specs, config.admission));
      sum += accepted;
      lo = s == 0 ? accepted : std::min(lo, accepted);
      hi = s == 0 ? accepted : std::max(hi, accepted);
    }
    point.accepted_mean = sum / static_cast<double>(config.seeds);
    point.accepted_min = lo;
    point.accepted_max = hi;
    curve.points.push_back(point);
  }
  return curve;
}

AcceptanceCurve run_master_slave_sweep(const std::string& scheme,
                                       const traffic::MasterSlaveConfig&
                                           workload,
                                       const AcceptanceSweepConfig& config) {
  const std::uint32_t node_count = workload.masters + workload.slaves;
  return run_acceptance_sweep(
      scheme, node_count,
      [&workload](std::uint64_t seed, std::size_t count) {
        traffic::MasterSlaveWorkload generator(workload, seed);
        return generator.generate(count);
      },
      config);
}

}  // namespace rtether::analysis
