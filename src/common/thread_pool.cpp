#include "common/thread_pool.hpp"

#include <atomic>
#include <memory>

#include "common/assert.hpp"

namespace rtether {

ThreadPool::ThreadPool(unsigned thread_count) {
  workers_.reserve(thread_count);
  for (unsigned i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) {
        work_available_.wait(mutex_);
      }
      if (stopping_) {
        return;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    job();
    {
      MutexLock lock(mutex_);
      --running_;
      if (running_ == 0 && queue_.empty()) {
        idle_.notify_all();
      }
    }
  }
}

void ThreadPool::submit(std::function<void()> job) {
  RTETHER_ASSERT_MSG(!workers_.empty(),
                     "submit on a zero-thread pool would never run");
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  while (!queue_.empty() || running_ != 0) {
    idle_.wait(mutex_);
  }
}

void ThreadPool::parallel_for_shards(
    std::size_t shard_count, const std::function<void(std::size_t)>& shard) {
  if (shard_count == 0) {
    return;
  }
  if (workers_.empty() || shard_count == 1) {
    for (std::size_t i = 0; i < shard_count; ++i) {
      shard(i);
    }
    return;
  }

  // Dynamic claiming: each helper job pulls the next unclaimed shard index
  // until none remain, so a pool of W workers balances N shards of uneven
  // size. Completion is tracked per *shard* (not per job) — the caller may
  // only return once every `shard(i)` call has finished.
  struct ForkJoin {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    Mutex mutex;
    CondVar done;
  };
  auto state = std::make_shared<ForkJoin>();

  const std::size_t helpers = std::min<std::size_t>(workers_.size(),
                                                    shard_count);
  for (std::size_t h = 0; h < helpers; ++h) {
    // `shard` is captured by reference: the caller blocks below until every
    // shard completed, so the callable outlives all uses. `state` is shared
    // so a helper that wakes up late (all shards already claimed) still has
    // somewhere safe to look.
    submit([state, shard_count, &shard] {
      for (;;) {
        const std::size_t i =
            state->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= shard_count) {
          return;
        }
        shard(i);
        const std::size_t finished =
            state->completed.fetch_add(1, std::memory_order_acq_rel) + 1;
        if (finished == shard_count) {
          // Lock before notifying so the caller cannot miss the signal
          // between its predicate check and its wait.
          MutexLock lock(state->mutex);
          state->done.notify_all();
        }
      }
    });
  }

  MutexLock lock(state->mutex);
  while (state->completed.load(std::memory_order_acquire) != shard_count) {
    state->done.wait(state->mutex);
  }
}

}  // namespace rtether
