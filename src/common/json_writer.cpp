#include "common/json_writer.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace rtether {

void JsonWriter::begin_value() {
  RTETHER_ASSERT_MSG(!root_closed_, "JsonWriter: document already complete");
  if (scopes_.empty()) {
    return;  // document root
  }
  if (scopes_.back() == Scope::kObject) {
    RTETHER_ASSERT_MSG(key_pending_,
                       "JsonWriter: object member needs a key first");
    key_pending_ = false;
    return;  // `key` already wrote the separator and the colon
  }
  if (has_element_.back()) {
    out_ += ',';
  }
  has_element_.back() = true;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  RTETHER_ASSERT_MSG(!scopes_.empty() && scopes_.back() == Scope::kObject,
                     "JsonWriter: key outside an object");
  RTETHER_ASSERT_MSG(!key_pending_, "JsonWriter: key after key");
  if (has_element_.back()) {
    out_ += ',';
  }
  has_element_.back() = true;
  out_ += '"';
  append_escaped(name);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  begin_value();
  scopes_.push_back(Scope::kObject);
  has_element_.push_back(false);
  out_ += '{';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  RTETHER_ASSERT_MSG(!scopes_.empty() && scopes_.back() == Scope::kObject,
                     "JsonWriter: end_object without begin_object");
  RTETHER_ASSERT_MSG(!key_pending_, "JsonWriter: dangling key");
  scopes_.pop_back();
  has_element_.pop_back();
  out_ += '}';
  if (scopes_.empty()) {
    root_closed_ = true;
  }
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  begin_value();
  scopes_.push_back(Scope::kArray);
  has_element_.push_back(false);
  out_ += '[';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  RTETHER_ASSERT_MSG(!scopes_.empty() && scopes_.back() == Scope::kArray,
                     "JsonWriter: end_array without begin_array");
  scopes_.pop_back();
  has_element_.pop_back();
  out_ += ']';
  if (scopes_.empty()) {
    root_closed_ = true;
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  begin_value();
  out_ += '"';
  append_escaped(text);
  out_ += '"';
  if (scopes_.empty()) {
    root_closed_ = true;
  }
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string_view(text));
}

JsonWriter& JsonWriter::value(double number) {
  // JSON has no NaN/Infinity; emitting null is the conventional fallback.
  if (!std::isfinite(number)) {
    return null();
  }
  begin_value();
  char buffer[32];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof buffer, number);
  RTETHER_ASSERT(ec == std::errc{});
  out_.append(buffer, end);
  if (scopes_.empty()) {
    root_closed_ = true;
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  begin_value();
  char buffer[24];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof buffer, number);
  RTETHER_ASSERT(ec == std::errc{});
  out_.append(buffer, end);
  if (scopes_.empty()) {
    root_closed_ = true;
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  begin_value();
  char buffer[24];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof buffer, number);
  RTETHER_ASSERT(ec == std::errc{});
  out_.append(buffer, end);
  if (scopes_.empty()) {
    root_closed_ = true;
  }
  return *this;
}

JsonWriter& JsonWriter::value(int number) {
  return value(static_cast<std::int64_t>(number));
}

JsonWriter& JsonWriter::value(bool flag) {
  begin_value();
  out_ += flag ? "true" : "false";
  if (scopes_.empty()) {
    root_closed_ = true;
  }
  return *this;
}

JsonWriter& JsonWriter::null() {
  begin_value();
  out_ += "null";
  if (scopes_.empty()) {
    root_closed_ = true;
  }
  return *this;
}

void JsonWriter::append_escaped(std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\b':
        out_ += "\\b";
        break;
      case '\f':
        out_ += "\\f";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out_ += buffer;
        } else {
          out_ += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
}

bool JsonWriter::complete() const { return root_closed_; }

const std::string& JsonWriter::str() const {
  RTETHER_ASSERT_MSG(root_closed_, "JsonWriter: document not complete");
  return out_;
}

bool JsonWriter::write_file(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  const std::string& doc = str();
  const bool body_ok = std::fwrite(doc.data(), 1, doc.size(), file) ==
                       doc.size();
  const bool newline_ok = std::fputc('\n', file) != EOF;
  const bool close_ok = std::fclose(file) == 0;
  return body_ok && newline_ok && close_ok;
}

}  // namespace rtether
