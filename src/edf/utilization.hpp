#pragma once

/// @file utilization.hpp
/// Constraint 1 of the feasibility test (paper Eq 18.2): ΣC_i/P_i ≤ 1.
///
/// Evaluating the sum in floating point would make boundary admissions
/// (U exactly 1) depend on summation order; evaluating it as one exact
/// fraction can overflow any fixed width (the common denominator is the lcm
/// of the periods, which explodes for coprime period sets). The test here
/// is exact whenever the running denominator fits in 128 bits — which
/// covers every realistic industrial period set — and otherwise falls back
/// to a fixed-point *upper bound* on U, i.e. it degrades by rejecting a
/// borderline-feasible set (by < n·2⁻³², never the other way). Admission
/// control must never accept an infeasible set; conservatively rejecting a
/// pathological one is the safe failure mode.

#include "edf/task_set.hpp"

namespace rtether::edf {

/// True iff ΣC_i/P_i > 1 (with the conservative fallback described above,
/// which can only turn "≤ 1 by a hair" into "exceeds").
[[nodiscard]] bool utilization_exceeds_one(const TaskSet& set);

/// Same test for `set ∪ {extra}` without materializing the union. The extra
/// task is accumulated last, exactly as if it had been `add`ed to the set, so
/// the verdict (including the overflow-fallback path, which is sensitive to
/// accumulation order) is identical to mutating the set and testing it.
[[nodiscard]] bool utilization_exceeds_one_with(const TaskSet& set,
                                                const PseudoTask& extra);

/// Incremental form of the exact test for admission pipelines: keeps the
/// 128-bit accumulation state of a task set so that testing `set ∪ {extra}`
/// is O(1) instead of O(n) per trial. Tasks must be `add`ed in the same
/// order they are added to the mirrored TaskSet; verdicts are then identical
/// to `utilization_exceeds_one_with` (including the conservative
/// fixed-point fallback once the running denominator overflows).
class UtilizationAccumulator {
 public:
  UtilizationAccumulator() = default;

  /// Rebuilds the state from scratch (O(n)).
  void reset(const TaskSet& set);

  /// Folds one more task into the state (mirror of `TaskSet::add`).
  void add(const PseudoTask& task);

  /// Verdict for the accumulated set alone.
  [[nodiscard]] bool exceeds_one() const;

  /// Verdict for `accumulated set ∪ {extra}` without mutating the state.
  [[nodiscard]] bool exceeds_one_with(const PseudoTask& extra) const;

 private:
  __extension__ using UInt128 = unsigned __int128;

  struct ExactState {
    bool valid{true};     ///< false once the denominator overflowed 128 bits
    bool exceeded{false}; ///< decided "exceeds" mid-accumulation
    std::uint64_t whole{0};
    UInt128 num{0};
    UInt128 den{1};
  };

  /// Advances `state` by one task; mirrors the reference accumulation.
  static void advance(ExactState& state, const PseudoTask& task);

  [[nodiscard]] static bool verdict(const ExactState& state, UInt128 upper);

  /// Σ ⌈C·2³²/P⌉ — the conservative fallback sum, kept alongside.
  [[nodiscard]] static UInt128 upper_bound_term(const PseudoTask& task);

  ExactState exact_{};
  UInt128 upper_sum_{0};
};

}  // namespace rtether::edf
