#include "sim/frame.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/units.hpp"
#include "net/ipv4.hpp"
#include "net/mgmt_frames.hpp"
#include "sim/addressing.hpp"

namespace rtether::sim {
namespace {

std::vector<std::uint8_t> rt_frame_bytes(std::uint64_t deadline,
                                         std::uint16_t channel) {
  net::Ipv4Header ip;
  ip.protocol = net::IpProtocol::kUdp;
  ip.total_length = 28;
  net::encode_rt_tag({deadline, ChannelId(channel)}, ip);

  net::EthernetHeader ethernet;
  ethernet.source = node_mac(NodeId{0});
  ethernet.destination = node_mac(NodeId{1});
  ethernet.ether_type = net::EtherType::kIpv4;

  ByteWriter w;
  ethernet.serialize(w);
  ip.serialize(w);
  return std::move(w).take();
}

std::vector<std::uint8_t> mgmt_frame_bytes() {
  net::EthernetHeader ethernet;
  ethernet.source = node_mac(NodeId{0});
  ethernet.destination = switch_mac();
  ethernet.ether_type = net::EtherType::kRtManagement;
  ByteWriter w;
  ethernet.serialize(w);
  w.write_u8(1);
  return std::move(w).take();
}

std::vector<std::uint8_t> best_effort_bytes() {
  net::EthernetHeader ethernet;
  ethernet.source = node_mac(NodeId{0});
  ethernet.destination = node_mac(NodeId{2});
  ethernet.ether_type = net::EtherType::kIpv4;
  net::Ipv4Header ip;  // ToS 0
  ip.total_length = 20;
  ByteWriter w;
  ethernet.serialize(w);
  ip.serialize(w);
  return std::move(w).take();
}

TEST(ClassifyFrame, RealTimeByToS255) {
  const auto info = classify_frame(rt_frame_bytes(1234, 42));
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->cls, FrameClass::kRealTime);
  ASSERT_TRUE(info->rt_tag.has_value());
  EXPECT_EQ(info->rt_tag->absolute_deadline, 1234u);
  EXPECT_EQ(info->rt_tag->channel, ChannelId(42));
}

TEST(ClassifyFrame, ManagementByEtherType) {
  const auto info = classify_frame(mgmt_frame_bytes());
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->cls, FrameClass::kManagement);
  EXPECT_EQ(info->destination_mac, switch_mac());
  EXPECT_FALSE(info->rt_tag.has_value());
}

TEST(ClassifyFrame, BestEffortByDefault) {
  const auto info = classify_frame(best_effort_bytes());
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->cls, FrameClass::kBestEffort);
  EXPECT_FALSE(info->rt_tag.has_value());
}

TEST(ClassifyFrame, TruncatedEthernetRejected) {
  const std::vector<std::uint8_t> short_bytes(13, 0);
  EXPECT_FALSE(classify_frame(short_bytes).has_value());
}

TEST(ClassifyFrame, Ipv4WithGarbageBodyIsBestEffort) {
  // EtherType says IPv4 but the IP header does not parse: best-effort, not
  // a crash — robustness against malformed senders.
  std::vector<std::uint8_t> bytes(20, 0);
  bytes[12] = 0x08;
  bytes[13] = 0x00;
  const auto info = classify_frame(bytes);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->cls, FrameClass::kBestEffort);
}

TEST(SimFrame, MakeCachesClassification) {
  const auto frame =
      SimFrame::make(9, rt_frame_bytes(555, 7), 100, 42, NodeId{0});
  EXPECT_EQ(frame.id, 9u);
  EXPECT_EQ(frame.created_at, 42u);
  EXPECT_EQ(frame.origin, NodeId{0});
  // Cached info must equal a fresh classification.
  const auto fresh = classify_frame(frame.bytes);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(frame.info.cls, fresh->cls);
  EXPECT_EQ(frame.info.rt_tag, fresh->rt_tag);
  EXPECT_EQ(frame.info.source_mac, fresh->source_mac);
}

TEST(SimFrame, WireBytesClampedToEthernetRange) {
  auto tiny = SimFrame::make(1, best_effort_bytes(), 0, 0, NodeId{0});
  EXPECT_EQ(tiny.wire_bytes(), kMinFrameWireBytes);

  auto padded = SimFrame::make(2, best_effort_bytes(), 1460, 0, NodeId{0});
  // 34 header bytes + 1460 + 24 framing = 1518 < 1538.
  EXPECT_EQ(padded.wire_bytes(), 34u + 1460 + 24);

  auto oversize = SimFrame::make(3, best_effort_bytes(), 9000, 0, NodeId{0});
  EXPECT_EQ(oversize.wire_bytes(), kMaxFrameWireBytes);
}

TEST(SimFrame, UnparseableBytesAssert) {
  EXPECT_DEATH(
      SimFrame::make(1, std::vector<std::uint8_t>(3, 0), 0, 0, NodeId{0}),
      "Ethernet header");
}

TEST(FrameClassNames, AllCovered) {
  EXPECT_STREQ(to_string(FrameClass::kManagement), "management");
  EXPECT_STREQ(to_string(FrameClass::kRealTime), "real-time");
  EXPECT_STREQ(to_string(FrameClass::kBestEffort), "best-effort");
}

}  // namespace
}  // namespace rtether::sim
