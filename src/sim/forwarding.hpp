#pragma once

/// @file forwarding.hpp
/// The switch's MAC forwarding table with source-address learning. In this
/// network the table converges during channel establishment (every node's
/// request/response traverses the switch before any RT data flows), so RT
/// frames never need flooding.
///
/// Open-addressing table on the 48-bit address value: `lookup` runs once
/// per forwarded frame and `learn` once per ingress on the kernel's
/// allocation-free hot path, where `std::unordered_map`'s node allocations
/// and bucket chases were measurable.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "net/address.hpp"

namespace rtether::sim {

class ForwardingTable {
 public:
  /// Records that `mac` was seen on the port toward `node`. Re-learning an
  /// existing entry to a new port updates it (station moved).
  void learn(const net::MacAddress& mac, NodeId node);

  /// Port (node) for a destination MAC; nullopt when unknown.
  [[nodiscard]] std::optional<NodeId> lookup(
      const net::MacAddress& mac) const;

  [[nodiscard]] std::size_t size() const { return used_; }

  /// Forgets every entry (switch reboot fault); capacity is kept.
  void clear() {
    for (Slot& slot : table_) {
      slot = Slot{};
    }
    used_ = 0;
  }

 private:
  /// 2^48..2^64-1 cannot be a 48-bit MAC: safe empty marker.
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  struct Slot {
    std::uint64_t key{kEmptyKey};
    NodeId node{};
  };

  [[nodiscard]] static std::size_t start_index(std::uint64_t key,
                                               std::size_t capacity) {
    return static_cast<std::size_t>((key * 0x9e37'79b9'7f4a'7c15ULL) >> 32) &
           (capacity - 1);
  }

  void rehash(std::size_t capacity);

  /// Linear probing, power-of-two capacity, ≤50% load.
  std::vector<Slot> table_;
  std::size_t used_{0};
};

}  // namespace rtether::sim
