#pragma once

/// @file simulator.hpp
/// Discrete-event simulation kernel: a clock and a time-ordered event queue.
/// Events at the same tick execute in scheduling order (stable), which keeps
/// runs bit-reproducible.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace rtether::sim {

class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current simulation time.
  [[nodiscard]] Tick now() const { return now_; }

  /// Schedules `action` at absolute time `when` (≥ now).
  void schedule_at(Tick when, Action action);

  /// Schedules `action` `delay` ticks from now.
  void schedule_in(Tick delay, Action action);

  /// Executes the next event; false when the queue is empty.
  bool step();

  /// Runs events with time ≤ `until`; the clock ends at `until` even if the
  /// queue drains early.
  void run_until(Tick until);

  /// Runs until the queue is empty, bounded by `max_events` as a runaway
  /// guard. Returns true when the queue drained; false when the budget was
  /// exhausted first (a self-rescheduling event loop that would otherwise
  /// spin forever) — identical behaviour in every build type, so a Release
  /// CI run stops with a failure instead of hanging or aborting the whole
  /// process. On false, `pending()` events remain queued and the simulation
  /// can be inspected or resumed.
  [[nodiscard]] bool run_all(std::uint64_t max_events = 100'000'000);

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    Tick time;
    std::uint64_t sequence;  // tie-break: FIFO within a tick
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  Tick now_{0};
  std::uint64_t next_sequence_{0};
  std::uint64_t executed_{0};
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace rtether::sim
