/// Parallel-simulation throughput gate: the partitioned fabric kernel
/// (sim/fabric.hpp + sim/parallel.hpp) against its own sequential baseline.
///
/// The workload is a 4-switch line fabric with `nodes_per_switch` end-nodes
/// per switch: every node runs one admitted cross-switch RT channel (so the
/// trunks — the cut links of the partitioning — carry real traffic) plus
/// bursty best-effort cross-traffic inside each switch. The identical
/// workload runs under thread counts {0, 1, 2, 4}, where 0 is the inline
/// sequential baseline (same barrier rounds, no pool); every run must
/// produce the bit-identical fabric digest — the conservative-lookahead
/// round schedule makes the event sequence a pure function of the spec, and
/// this bench asserts it while timing.
///
/// Gates:
///   1. paired overhead: the 1-thread run must reach ≥0.95× of the
///      sequential baseline's slots/s — the round-barrier cost must stay
///      inside 5% (always enforced). Measured noise-robustly like the
///      admission-service inline gate: the four modes run interleaved for
///      several repetitions and the gate takes the best per-rep paired
///      ratio, so scheduler jitter on a shared 1-core runner cannot fail
///      a driver whose overhead is genuinely small; and
///   2. scaling: the 4-thread run must reach ≥2× the sequential baseline's
///      slots/s — armed only when the hardware offers ≥4 threads (CI
///      containers with fewer cores measure but do not gate).
///
/// Writes BENCH_sim_parallel.json for scripts/bench_trajectory.py: slots/s
/// per thread count, partition count and the cut-link traffic share.
///
/// Usage: bench_sim_parallel [measure_slots>=256] [json] [--skip-gate]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json_writer.hpp"
#include "core/multihop.hpp"
#include "core/topology.hpp"
#include "sim/fabric.hpp"
#include "sim/parallel.hpp"

namespace rtether {
namespace {

using Clock = std::chrono::steady_clock;

struct WorkloadConfig {
  std::uint32_t switches{4};
  std::uint32_t nodes_per_switch{48};
  /// Per-channel contract: one maximal frame every `period` slots with a
  /// deadline loose enough for the 4-switch line's longest route.
  Slot period{40};
  Slot capacity{1};
  Slot deadline{30};
  double best_effort_load{0.5};
  Slot measure_slots{4096};
  Tick ticks_per_slot{16};
  std::uint64_t seed{42};
};

struct Workload {
  core::Topology topology{1, 1};
  std::vector<core::MultihopChannel> channels;
};

/// Builds the fabric and admits one cross-switch channel per node through
/// the real multihop controller (node n → the same rank on the next
/// switch), so paths and per-hop deadline splits are genuine admission
/// outputs, not hand-picked numbers.
Workload build_workload(const WorkloadConfig& config) {
  const std::uint32_t nodes = config.switches * config.nodes_per_switch;
  Workload workload;
  workload.topology = core::Topology(nodes, config.switches);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    workload.topology.attach_node(NodeId{n},
                                  core::SwitchId{n % config.switches});
  }
  for (std::uint32_t s = 0; s + 1 < config.switches; ++s) {
    workload.topology.connect_switches(core::SwitchId{s},
                                       core::SwitchId{s + 1});
  }

  core::PathAdmissionController controller(
      workload.topology, core::make_path_partitioner("ADPS"));
  for (std::uint32_t n = 0; n < nodes; ++n) {
    core::ChannelSpec spec;
    spec.source = NodeId{n};
    // Next switch, same rank: every channel crosses exactly one trunk.
    spec.destination = NodeId{(n + 1) % nodes};
    spec.period = config.period;
    spec.capacity = config.capacity;
    spec.deadline = config.deadline;
    auto admitted = controller.request(spec);
    if (admitted.has_value()) {
      workload.channels.push_back(std::move(admitted).value());
    }
  }
  return workload;
}

struct RunOutcome {
  double seconds{0.0};
  std::uint64_t executed_events{0};
  std::uint64_t rt_delivered{0};
  std::uint64_t deadline_misses{0};
  std::uint64_t cut_link_records{0};
  std::uint64_t rounds{0};
  std::size_t partitions{0};
  std::uint64_t digest{0};

  [[nodiscard]] double slots_per_second(Slot slots) const {
    return seconds > 0.0 ? static_cast<double>(slots) / seconds : 0.0;
  }
};

void fnv_mix(std::uint64_t& hash, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (value >> shift) & 0xff;
    hash *= 0x0000'0100'0000'01b3ULL;
  }
}

/// Digest over everything the scenario runner's fabric digest covers in
/// spirit: kernel event counts, per-partition totals, merged per-channel
/// accounting and the cut-link record counts. Any cross-thread divergence
/// in event ordering lands in at least one of these.
std::uint64_t fabric_digest(const sim::FabricNetwork& fabric) {
  std::uint64_t hash = 0xcbf2'9ce4'8422'2325ULL;
  for (std::size_t p = 0; p < fabric.partition_count(); ++p) {
    fnv_mix(hash, fabric.kernel(p).executed_events());
    const sim::SimStats& stats = fabric.partition_stats(p);
    fnv_mix(hash, stats.total_rt_delivered());
    fnv_mix(hash, stats.total_deadline_misses());
    fnv_mix(hash, stats.best_effort_sent());
    fnv_mix(hash, stats.best_effort_delivered());
  }
  for (const auto& [id, counts] : fabric.channel_counts()) {
    fnv_mix(hash, id);
    fnv_mix(hash, counts.sent);
    fnv_mix(hash, counts.delivered);
    fnv_mix(hash, counts.misses);
    fnv_mix(hash, counts.dropped);
  }
  for (const auto& trunk : fabric.trunk_traffic()) {
    fnv_mix(hash, (std::uint64_t{trunk.from} << 32) | trunk.to);
    fnv_mix(hash, trunk.records);
  }
  return hash;
}

RunOutcome run_fabric(const WorkloadConfig& config, const Workload& workload,
                      unsigned threads) {
  sim::SimConfig sim_config;
  sim_config.ticks_per_slot = config.ticks_per_slot;
  // One slot of trunk propagation: the conservative lookahead then spans a
  // full slot of event work per barrier round (see sim/config.hpp).
  sim_config.trunk_propagation_ticks = config.ticks_per_slot;

  sim::FabricOptions options;
  options.seed = config.seed;
  options.traffic_stop = sim_config.slots_to_ticks(config.measure_slots);
  options.with_best_effort = config.best_effort_load > 0.0;
  options.best_effort_load = config.best_effort_load;
  options.bursty_best_effort = true;

  sim::FabricNetwork fabric(sim_config, workload.topology, workload.channels,
                            options);
  sim::ParallelSimulator driver(fabric, threads);
  const Tick drain = sim_config.slots_to_ticks(
      static_cast<Slot>(config.deadline) + 64);

  const auto t0 = Clock::now();
  const bool ok = driver.run_until(options.traffic_stop + drain);
  const auto t1 = Clock::now();
  if (!ok) {
    std::fprintf(stderr, "FATAL: fabric run exhausted the event budget\n");
    std::exit(2);
  }

  RunOutcome outcome;
  outcome.seconds = std::chrono::duration<double>(t1 - t0).count();
  outcome.executed_events = fabric.executed_events();
  outcome.cut_link_records = fabric.cut_link_records();
  outcome.rounds = driver.rounds();
  outcome.partitions = fabric.partition_count();
  for (std::size_t p = 0; p < fabric.partition_count(); ++p) {
    outcome.rt_delivered += fabric.partition_stats(p).total_rt_delivered();
    outcome.deadline_misses +=
        fabric.partition_stats(p).total_deadline_misses();
  }
  outcome.digest = fabric_digest(fabric);
  return outcome;
}

bool parse_u64_arg(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return end != text && *end == '\0';
}

}  // namespace
}  // namespace rtether

int main(int argc, char** argv) {
  using namespace rtether;

  WorkloadConfig config;
  std::string json_path = "BENCH_sim_parallel.json";
  bool skip_gate = false;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--skip-gate") == 0) {
      skip_gate = true;
      continue;
    }
    std::uint64_t value = 0;
    bool ok = true;
    switch (positional++) {
      case 0:
        ok = parse_u64_arg(argv[i], value) && value >= 256;
        config.measure_slots = value;
        break;
      case 1:
        json_path = argv[i];
        break;
      default:
        ok = false;
        break;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "bad argument: %s\nusage: bench_sim_parallel "
                   "[measure_slots>=256] [json] [--skip-gate]\n",
                   argv[i]);
      return 64;
    }
  }

  const unsigned hardware = std::thread::hardware_concurrency();
  const Workload workload = build_workload(config);

  std::printf(
      "sim-parallel bench: %u-switch line, %u nodes, %zu cross-switch RT "
      "channels, BE load %.2f (bursty), %llu slots (hardware: %u threads)\n",
      config.switches, config.switches * config.nodes_per_switch,
      workload.channels.size(), config.best_effort_load,
      static_cast<unsigned long long>(config.measure_slots), hardware);

  // Interleaved repetitions: each rep runs all four modes back-to-back, so
  // a per-rep ratio compares measurements taken under the same machine
  // conditions. Best-of keeps the rep least disturbed by scheduler noise.
  constexpr int kReps = 5;
  const unsigned modes[] = {0, 1, 2, 4};
  RunOutcome outcomes[4];
  double paired_ratio = 0.0;
  bool digests_identical = true;
  for (int rep = 0; rep < kReps; ++rep) {
    RunOutcome this_rep[4];
    for (int i = 0; i < 4; ++i) {
      this_rep[i] = run_fabric(config, workload, modes[i]);
      digests_identical &=
          this_rep[i].digest == this_rep[0].digest &&
          this_rep[i].executed_events == this_rep[0].executed_events &&
          this_rep[i].rt_delivered == this_rep[0].rt_delivered;
      if (rep == 0) {
        outcomes[i] = this_rep[i];
      } else {
        digests_identical &= outcomes[i].digest == this_rep[i].digest;
        if (this_rep[i].seconds < outcomes[i].seconds) {
          outcomes[i] = this_rep[i];
        }
      }
    }
    const double rep_sequential =
        this_rep[0].slots_per_second(config.measure_slots);
    if (rep_sequential > 0.0) {
      paired_ratio = std::max(
          paired_ratio,
          this_rep[1].slots_per_second(config.measure_slots) / rep_sequential);
    }
  }
  for (int i = 0; i < 4; ++i) {
    std::printf(
        "%s: %9.0f slots/s  (best of %d, %.3f s, %llu events, %llu rounds, "
        "digest %016llx)\n",
        modes[i] == 0 ? "sequential" : (std::string("threads=") +
                                        std::to_string(modes[i]))
                                           .c_str(),
        outcomes[i].slots_per_second(config.measure_slots), kReps,
        outcomes[i].seconds,
        static_cast<unsigned long long>(outcomes[i].executed_events),
        static_cast<unsigned long long>(outcomes[i].rounds),
        static_cast<unsigned long long>(outcomes[i].digest));
  }

  const double sequential = outcomes[0].slots_per_second(config.measure_slots);
  if (sequential > 0.0) {
    // Second estimator: ratio of the best runs of each mode. A noise
    // spike that lands on the 1-thread leg of every rep cannot sink this
    // one — any single clean run of each mode suffices.
    paired_ratio = std::max(
        paired_ratio,
        outcomes[1].slots_per_second(config.measure_slots) / sequential);
  }
  const double speedup_4t =
      sequential > 0.0
          ? outcomes[3].slots_per_second(config.measure_slots) / sequential
          : 0.0;
  const double cut_share =
      outcomes[0].rt_delivered > 0
          ? static_cast<double>(outcomes[0].cut_link_records) /
                static_cast<double>(outcomes[0].rt_delivered)
          : 0.0;
  const bool scaling_armed = hardware >= 4;

  std::printf(
      "partitions %zu, cut-link records %llu (%.2f of RT deliveries), "
      "misses %llu\n",
      outcomes[0].partitions,
      static_cast<unsigned long long>(outcomes[0].cut_link_records), cut_share,
      static_cast<unsigned long long>(outcomes[0].deadline_misses));
  std::printf("paired 1-thread ratio: %.3fx, 4-thread speedup: %.2fx (%s)\n",
              paired_ratio, speedup_4t,
              scaling_armed ? "gate armed" : "gate disarmed: <4 hw threads");

  JsonWriter json;
  json.begin_object();
  json.member("bench", "sim_parallel");
  json.member("switches", static_cast<std::uint64_t>(config.switches));
  json.member("nodes", static_cast<std::uint64_t>(config.switches *
                                                  config.nodes_per_switch));
  json.member("rt_channels",
              static_cast<std::uint64_t>(workload.channels.size()));
  json.member("measure_slots", config.measure_slots);
  json.member("partition_count",
              static_cast<std::uint64_t>(outcomes[0].partitions));
  json.member("sequential_slots_per_sec", sequential);
  json.member("threads1_slots_per_sec",
              outcomes[1].slots_per_second(config.measure_slots));
  json.member("threads2_slots_per_sec",
              outcomes[2].slots_per_second(config.measure_slots));
  json.member("threads4_slots_per_sec",
              outcomes[3].slots_per_second(config.measure_slots));
  json.member("paired_1thread_ratio", paired_ratio);
  json.member("speedup_4threads", speedup_4t);
  json.member("cut_link_records", outcomes[0].cut_link_records);
  json.member("cut_link_share", cut_share);
  json.member("executed_events", outcomes[0].executed_events);
  json.member("barrier_rounds", outcomes[0].rounds);
  json.member("digests_identical", digests_identical);
  json.member("deadline_misses", outcomes[0].deadline_misses);
  json.member("hardware_threads", static_cast<std::uint64_t>(hardware));
  json.member("scaling_gate_armed", scaling_armed);
  json.end_object();
  if (!json.write_file(json_path)) {
    std::fprintf(stderr, "FAILED to write %s\n", json_path.c_str());
    return 3;
  }
  std::printf("wrote %s\n", json_path.c_str());

  if (!digests_identical) {
    std::printf("FAIL: fabric digests diverged across thread counts\n");
    return 1;
  }
  if (outcomes[0].cut_link_records == 0) {
    std::printf("FAIL: no cut-link traffic — the workload missed the trunks\n");
    return 1;
  }
  if (!skip_gate && paired_ratio < 0.95) {
    std::printf("FAIL: paired 1-thread ratio %.3fx below the 0.95x gate\n",
                paired_ratio);
    return 1;
  }
  if (!skip_gate && scaling_armed && speedup_4t < 2.0) {
    std::printf("FAIL: 4-thread speedup %.2fx below the 2x gate\n",
                speedup_4t);
    return 1;
  }
  std::printf(skip_gate ? "gate skipped\n" : "gate passed\n");
  return 0;
}
