#include "core/partitioner.hpp"

#include <gtest/gtest.h>

namespace rtether::core {
namespace {

ChannelSpec spec(std::uint32_t src, std::uint32_t dst, Slot p, Slot c,
                 Slot d) {
  return ChannelSpec{NodeId{src}, NodeId{dst}, p, c, d};
}

RtChannel make_channel(std::uint16_t id, std::uint32_t src, std::uint32_t dst,
                       Slot du, Slot dd) {
  return RtChannel{ChannelId(id), spec(src, dst, 100, 3, du + dd),
                   DeadlinePartition{du, dd}};
}

// ---------------------------------------------------------------- SDPS ----

TEST(Sdps, SplitsEvenDeadlineInHalf) {
  // Eq 18.14: d_iu = d_id = d/2.
  const NetworkState state(4);
  const auto p = SymmetricPartitioner().partition(spec(0, 1, 100, 3, 40),
                                                  state);
  EXPECT_EQ(p, (DeadlinePartition{20, 20}));
}

TEST(Sdps, OddDeadlineGivesSpareSlotToDownlink) {
  const NetworkState state(4);
  const auto p = SymmetricPartitioner().partition(spec(0, 1, 100, 3, 41),
                                                  state);
  EXPECT_EQ(p.uplink, 20u);
  EXPECT_EQ(p.downlink, 21u);
}

TEST(Sdps, IgnoresSystemState) {
  NetworkState loaded(4);
  for (std::uint16_t i = 1; i <= 5; ++i) {
    loaded.add_channel(make_channel(i, 0, 1, 20, 20));
  }
  const NetworkState idle(4);
  const auto s = spec(0, 1, 100, 3, 40);
  EXPECT_EQ(SymmetricPartitioner().partition(s, loaded),
            SymmetricPartitioner().partition(s, idle));
}

TEST(Sdps, ClampsWhenHalfBelowCapacity) {
  // d = 2C = 14, d/2 = 7 = C: fine. d = 15: 7 < C=7? No — use C=8,d=17:
  // half = 8 = C fine. Take C=9, d=19: half 9 ≥ 9 OK. Need half < C:
  // C=10, d=21 → half 10 = C. Only d odd near 2C: C=10, d=20, half=10.
  // Clamping activates for d=2C+1 → half = C exactly after floor. Still
  // satisfies Eq 18.9.
  const NetworkState state(2);
  const auto p = SymmetricPartitioner().partition(spec(0, 1, 100, 10, 21),
                                                  state);
  EXPECT_TRUE(p.satisfies(spec(0, 1, 100, 10, 21)));
  EXPECT_EQ(p.uplink, 10u);
  EXPECT_EQ(p.downlink, 11u);
}

// ---------------------------------------------------------------- ADPS ----

TEST(Adps, IdleNetworkSplitsEvenly) {
  // LL(src)+1 = 1, LL(dst)+1 = 1 → Upart = 1/2 (Eq 18.16).
  const NetworkState state(4);
  const auto p = AsymmetricPartitioner().partition(spec(0, 1, 100, 3, 40),
                                                   state);
  EXPECT_EQ(p, (DeadlinePartition{20, 20}));
}

TEST(Adps, LoadedUplinkReceivesLargerShare) {
  // Source uplink already carries 4 channels, destination downlink none:
  // Upart = 5/(5+1) → d_iu = round(40·5/6) = round(33.3) = 33.
  NetworkState state(8);
  for (std::uint16_t i = 1; i <= 4; ++i) {
    state.add_channel(make_channel(i, 0, static_cast<std::uint32_t>(i), 20,
                                   20));
  }
  const auto p = AsymmetricPartitioner().partition(spec(0, 5, 100, 3, 40),
                                                   state);
  EXPECT_EQ(p.uplink, 33u);
  EXPECT_EQ(p.downlink, 7u);
}

TEST(Adps, LoadedDownlinkReceivesLargerShare) {
  // Mirror image: 4 channels into the destination's downlink.
  NetworkState state(8);
  for (std::uint16_t i = 1; i <= 4; ++i) {
    state.add_channel(
        make_channel(i, static_cast<std::uint32_t>(i), 7, 20, 20));
  }
  const auto p = AsymmetricPartitioner().partition(spec(5, 7, 100, 3, 40),
                                                   state);
  EXPECT_EQ(p.uplink, 7u);
  EXPECT_EQ(p.downlink, 33u);
}

TEST(Adps, PaperMasterSlaveRatio) {
  // 10 channels on the master's uplink, 2 on the slave's downlink:
  // Upart = 11/(11+3) = 11/14 → d_iu = round(40·11/14) = round(31.43) = 31.
  NetworkState state(61);
  for (std::uint16_t i = 1; i <= 10; ++i) {
    state.add_channel(
        make_channel(i, 0, static_cast<std::uint32_t>(10 + i), 20, 20));
  }
  state.add_channel(make_channel(100, 1, 60, 20, 20));
  state.add_channel(make_channel(101, 2, 60, 20, 20));
  const auto p = AsymmetricPartitioner().partition(spec(0, 60, 100, 3, 40),
                                                   state);
  EXPECT_EQ(p.uplink, 31u);
  EXPECT_EQ(p.downlink, 9u);
}

TEST(Adps, ClampsToCapacityBounds) {
  // Extremely lopsided load with a tight deadline: raw share would leave
  // the downlink below C — Eq 18.9 forces d_id = C.
  NetworkState state(30);
  for (std::uint16_t i = 1; i <= 20; ++i) {
    state.add_channel(
        make_channel(i, 0, static_cast<std::uint32_t>(i), 20, 20));
  }
  const auto s = spec(0, 25, 100, 3, 8);
  const auto p = AsymmetricPartitioner().partition(s, state);
  EXPECT_TRUE(p.satisfies(s));
  EXPECT_EQ(p.downlink, 3u);  // clamped to C
  EXPECT_EQ(p.uplink, 5u);
}

TEST(Adps, ExcludeSelfOptionChangesFirstSplit) {
  NetworkState state(4);
  state.add_channel(make_channel(1, 0, 1, 20, 20));
  const auto s = spec(0, 2, 100, 3, 40);
  // Include self: Upart = 2/(2+1) → round(26.67) = 27. Exclude self: the
  // idle downlink contributes 0, so Upart = 1/1 → raw 40, clamped to
  // d − C = 37 — exactly the degenerate split that motivates counting the
  // requested channel (the library default).
  const auto with_self = AsymmetricPartitioner().partition(s, state);
  AdpsOptions opts;
  opts.include_requested_channel = false;
  const auto without_self = AsymmetricPartitioner(opts).partition(s, state);
  EXPECT_EQ(with_self.uplink, 27u);
  EXPECT_EQ(without_self.uplink, 37u);
  EXPECT_TRUE(without_self.satisfies(s));
}

TEST(Adps, FloorRoundingOption) {
  NetworkState state(4);
  state.add_channel(make_channel(1, 0, 1, 20, 20));
  const auto s = spec(0, 2, 100, 3, 40);  // share = 26.67
  AdpsOptions opts;
  opts.round_to_nearest = false;
  EXPECT_EQ(AsymmetricPartitioner(opts).partition(s, state).uplink, 26u);
}

// ------------------------------------------------------------ extensions --

TEST(Udps, WeighsByUtilizationNotCount) {
  // One heavy channel (C/P = 30/100) on the uplink vs three feather-weight
  // channels (1/100 each) on the downlink. Count-based ADPS favours the
  // downlink 2:4; utilization-based must favour the uplink.
  NetworkState state(8);
  state.add_channel(RtChannel{ChannelId(1), spec(0, 1, 100, 30, 80),
                              DeadlinePartition{40, 40}});
  for (std::uint16_t i = 2; i <= 4; ++i) {
    state.add_channel(RtChannel{ChannelId(i),
                                spec(static_cast<std::uint32_t>(i), 5,
                                     100, 1, 40),
                                DeadlinePartition{20, 20}});
  }
  const auto s = spec(0, 5, 100, 3, 40);
  const auto udps = UtilizationWeightedPartitioner().partition(s, state);
  EXPECT_GT(udps.uplink, udps.downlink);
  const auto adps = AsymmetricPartitioner().partition(s, state);
  EXPECT_LT(adps.uplink, adps.downlink);
}

TEST(Search, FirstCandidateIsAdps) {
  NetworkState state(4);
  state.add_channel(make_channel(1, 0, 1, 20, 20));
  const auto s = spec(0, 2, 100, 3, 40);
  const auto candidates = SearchPartitioner().candidates(s, state);
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates.front(),
            AsymmetricPartitioner().partition(s, state));
}

TEST(Search, EnumeratesEveryAdmissibleSplit) {
  const NetworkState state(2);
  const auto s = spec(0, 1, 100, 3, 12);  // uplink ∈ [3, 9] → 7 candidates
  const auto candidates = SearchPartitioner().candidates(s, state);
  EXPECT_EQ(candidates.size(), 7u);
  for (const auto& p : candidates) {
    EXPECT_TRUE(p.satisfies(s));
  }
  // All distinct.
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (std::size_t j = i + 1; j < candidates.size(); ++j) {
      EXPECT_NE(candidates[i], candidates[j]);
    }
  }
}

TEST(Search, MinimalDeadlineHasSingleCandidate) {
  const NetworkState state(2);
  const auto s = spec(0, 1, 100, 3, 6);  // d = 2C: only {3,3}
  const auto candidates = SearchPartitioner().candidates(s, state);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates.front(), (DeadlinePartition{3, 3}));
}

// --------------------------------------------------------------- factory --

TEST(MakePartitioner, KnownNames) {
  EXPECT_EQ(make_partitioner("SDPS")->name(), "SDPS");
  EXPECT_EQ(make_partitioner("ADPS")->name(), "ADPS");
  EXPECT_EQ(make_partitioner("UDPS")->name(), "UDPS");
  EXPECT_EQ(make_partitioner("Search")->name(), "Search");
}

TEST(MakePartitioner, UnknownNameAsserts) {
  EXPECT_DEATH((void)make_partitioner("bogus"), "unknown partitioner");
}

}  // namespace
}  // namespace rtether::core
