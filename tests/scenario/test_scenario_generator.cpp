// The generator's contract: a seed is a complete, reproducible bug report.
// Same seed → bit-identical spec; every spec is well-formed, within the
// configured bounds, and survives a JSON round-trip unchanged (the corpus
// format is the replay format).

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>

#include "scenario/generator.hpp"
#include "scenario/json_io.hpp"

namespace rtether::scenario {
namespace {

TEST(ScenarioGenerator, SameSeedSameSpec) {
  const GeneratorConfig config;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    EXPECT_EQ(generate_scenario(config, seed), generate_scenario(config, seed))
        << "seed " << seed;
  }
}

TEST(ScenarioGenerator, DistinctSeedsExploreDistinctScenarios) {
  const GeneratorConfig config;
  std::set<std::string> fingerprints;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    fingerprints.insert(to_json(generate_scenario(config, seed)));
  }
  // Collisions would mean the seed does not reach the sampling space.
  EXPECT_EQ(fingerprints.size(), 64u);
}

TEST(ScenarioGenerator, SpecsStayWithinConfiguredBounds) {
  GeneratorConfig config;
  config.min_nodes = 4;
  config.max_nodes = 9;
  config.min_ops = 6;
  config.max_ops = 20;
  config.max_switches = 3;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const auto spec = generate_scenario(config, seed);
    EXPECT_TRUE(spec.well_formed()) << spec.summary();
    EXPECT_GE(spec.topology.nodes, config.min_nodes);
    EXPECT_LE(spec.topology.nodes, config.max_nodes);
    EXPECT_GE(spec.ops.size(), config.min_ops);
    EXPECT_LE(spec.ops.size(), config.max_ops);
    if (spec.topology.kind == TopologyKind::kStar) {
      EXPECT_EQ(spec.topology.switches, 1u);
      EXPECT_TRUE(spec.simulate);
    } else {
      EXPECT_GE(spec.topology.switches, 2u);
      EXPECT_LE(spec.topology.switches, config.max_switches);
      // Round-robin attachment needs at least one node per switch.
      EXPECT_GE(spec.topology.nodes, spec.topology.switches);
    }
    EXPECT_EQ(spec.seed, seed);
  }
}

TEST(ScenarioGenerator, CoversTopologiesSchemesAndWorkloadKnobs) {
  const GeneratorConfig config;
  std::set<TopologyKind> kinds;
  std::set<std::string> schemes;
  bool saw_release = false;
  bool saw_best_effort = false;
  bool saw_invalid_spec = false;
  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    const auto spec = generate_scenario(config, seed);
    kinds.insert(spec.topology.kind);
    schemes.insert(spec.scheme);
    saw_best_effort |= spec.with_best_effort;
    for (const auto& op : spec.ops) {
      saw_release |= op.kind == ScenarioOp::Kind::kRelease;
      saw_invalid_spec |=
          op.kind == ScenarioOp::Kind::kAdmit && !op.spec.valid();
    }
  }
  EXPECT_EQ(kinds.size(), 3u);  // star, line, tree
  EXPECT_GE(schemes.size(), 4u);
  EXPECT_TRUE(saw_release);
  EXPECT_TRUE(saw_best_effort);
  EXPECT_TRUE(saw_invalid_spec);
}

TEST(ScenarioJson, RoundTripsGeneratedSpecs) {
  const GeneratorConfig config;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const auto spec = generate_scenario(config, seed);
    const auto parsed = from_json(to_json(spec));
    ASSERT_TRUE(parsed.has_value()) << parsed.error();
    EXPECT_EQ(*parsed, spec) << "seed " << seed;
  }
}

TEST(ScenarioJson, SaveAndLoadFile) {
  const auto spec = generate_scenario({}, 7);
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "scenario7.json")
          .string();
  ASSERT_TRUE(save_scenario(spec, path));
  const auto loaded = load_scenario(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.error();
  EXPECT_EQ(*loaded, spec);
}

TEST(ScenarioJson, RejectsUnknownKeysAndBadSchemas) {
  const auto spec = generate_scenario({}, 11);
  std::string doc = to_json(spec);

  // Unknown key: corpus drift must fail loudly.
  std::string with_extra = doc;
  with_extra.insert(1, "\"surprise\":1,");
  EXPECT_FALSE(from_json(with_extra).has_value());

  // Wrong schema tag.
  std::string wrong_schema = doc;
  const auto at = wrong_schema.find("rtether-scenario-v1");
  wrong_schema.replace(at, 19, "rtether-scenario-v9");
  EXPECT_FALSE(from_json(wrong_schema).has_value());

  // Trailing garbage.
  EXPECT_FALSE(from_json(doc + "x").has_value());

  // Malformed: a release pointing forward is not well-formed.
  EXPECT_FALSE(
      from_json(R"({"schema":"rtether-scenario-v1","seed":0,"name":"",)"
                R"("scheme":"ADPS","topology":{"kind":"star","switches":1,)"
                R"("nodes":3},"sim":{"simulate":false,"run_slots":100,)"
                R"("ticks_per_slot":16,"with_best_effort":false,)"
                R"("best_effort_load":0,"bursty_best_effort":false},)"
                R"("ops":[{"op":"release","target":5}]})")
          .has_value());

  // Out-of-range integers must fail, not truncate: a raw_id of 65536 would
  // otherwise silently become the reserved ID 0.
  EXPECT_FALSE(
      from_json(R"({"schema":"rtether-scenario-v1","seed":0,"name":"",)"
                R"("scheme":"ADPS","topology":{"kind":"star","switches":1,)"
                R"("nodes":3},"sim":{"simulate":false,"run_slots":100,)"
                R"("ticks_per_slot":16,"with_best_effort":false,)"
                R"("best_effort_load":0,"bursty_best_effort":false},)"
                R"("ops":[{"op":"release","raw_id":65536}]})")
          .has_value());
  std::string big_nodes = doc;
  const auto nodes_at = big_nodes.find("\"nodes\":");
  ASSERT_NE(nodes_at, std::string::npos);
  // 2^32 + 3 truncates to 3 if unchecked.
  big_nodes.replace(nodes_at, big_nodes.find(
                                  '}', nodes_at) - nodes_at,
                    "\"nodes\":4294967299");
  EXPECT_FALSE(from_json(big_nodes).has_value());

  // A best-effort phase with a zero offered load would trip the sim
  // source's assert; well-formedness rejects it at parse time instead.
  EXPECT_FALSE(
      from_json(R"({"schema":"rtether-scenario-v1","seed":0,"name":"",)"
                R"("scheme":"ADPS","topology":{"kind":"star","switches":1,)"
                R"("nodes":3},"sim":{"simulate":true,"run_slots":100,)"
                R"("ticks_per_slot":16,"with_best_effort":true,)"
                R"("best_effort_load":0,"bursty_best_effort":false},)"
                R"("ops":[]})")
          .has_value());

  EXPECT_FALSE(from_json("").has_value());
  EXPECT_FALSE(load_scenario("/nonexistent/scenario.json").has_value());
}

TEST(ScenarioGenerator, ChurnHeavyProfilePinsSteadyStateChurn) {
  GeneratorConfig config;
  config.profile = GeneratorProfile::kChurnHeavy;
  config.max_ops = 96;
  std::size_t total_releases = 0;
  std::size_t total_ops = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const auto spec = generate_scenario(config, seed);
    EXPECT_TRUE(spec.well_formed()) << spec.summary();
    EXPECT_EQ(spec, generate_scenario(config, seed)) << "seed " << seed;
    total_ops += spec.ops.size();
    for (const auto& op : spec.ops) {
      total_releases += op.kind == ScenarioOp::Kind::kRelease ? 1u : 0u;
    }
  }
  // Steady-state churn: releases must dominate far beyond the mixed
  // profile's ~15 % share (they fire with p=0.5 once channels are live).
  EXPECT_GT(total_releases * 3, total_ops);
}

TEST(ScenarioJson, BoundarySpecsRoundTripExactly) {
  // 64-bit boundary values in every Slot field must survive the round trip
  // bit-exactly — a wrapped or truncated corpus entry silently tests a
  // different scenario.
  ScenarioSpec spec;
  spec.seed = 0xffffffffffffffffULL;
  spec.name = "boundary";
  spec.topology.nodes = 4;
  spec.run_slots = 0xffffffffffffffffULL;
  spec.simulate = false;
  core::ChannelSpec huge;
  huge.source = NodeId{0};
  huge.destination = NodeId{1};
  huge.period = 0xffffffffffffffffULL;
  huge.capacity = 0xfffffffffffffffeULL;
  huge.deadline = 0xffffffffffffffffULL;
  spec.ops.push_back(ScenarioOp::admit(huge));
  spec.ops.push_back(ScenarioOp::release_raw(0xffff));
  spec.ops.push_back(ScenarioOp::release_of(0));
  const auto parsed = from_json(to_json(spec));
  ASSERT_TRUE(parsed.has_value()) << parsed.error();
  EXPECT_EQ(*parsed, spec);
}

TEST(ScenarioJson, RejectsOutOfRangeAndNonFiniteNumbers) {
  auto doc_with = [](const std::string& period,
                     const std::string& load) {
    return std::string(
               R"({"schema":"rtether-scenario-v1","seed":0,"name":"",)"
               R"("scheme":"ADPS","topology":{"kind":"star","switches":1,)"
               R"("nodes":3},"sim":{"simulate":false,"run_slots":100,)"
               R"("ticks_per_slot":16,"with_best_effort":false,)"
               R"("best_effort_load":)") +
           load +
           R"(,"bursty_best_effort":false},"ops":[{"op":"admit",)"
           R"("source":0,"destination":1,"period":)" +
           period + R"(,"capacity":1,"deadline":4}]})";
  };

  // In-range boundary parses…
  EXPECT_TRUE(from_json(doc_with("18446744073709551615", "0")).has_value());
  // …one past 2⁶⁴−1 must fail, not wrap to 0.
  EXPECT_FALSE(from_json(doc_with("18446744073709551616", "0")).has_value());
  EXPECT_FALSE(
      from_json(doc_with("99999999999999999999999", "0")).has_value());
  // Negative values are not unsigned integers.
  EXPECT_FALSE(from_json(doc_with("-1", "0")).has_value());

  // Non-finite and out-of-range doubles: from_chars accepts the strtod
  // spellings, the schema must not.
  EXPECT_FALSE(from_json(doc_with("50", "inf")).has_value());
  EXPECT_FALSE(from_json(doc_with("50", "nan")).has_value());
  EXPECT_FALSE(from_json(doc_with("50", "1e999")).has_value());
  EXPECT_FALSE(from_json(doc_with("50", "-0.25")).has_value());
  EXPECT_TRUE(from_json(doc_with("50", "0.75")).has_value());
}

TEST(ReleaseOutcomeJson, RoundTripsSuccess) {
  const core::ReleaseOutcome outcome{ChannelId{42}};
  const auto parsed = release_outcome_from_json(to_json(outcome));
  ASSERT_TRUE(parsed.has_value()) << parsed.error();
  ASSERT_TRUE(parsed->has_value());
  EXPECT_EQ(**parsed, ChannelId{42});
}

TEST(ReleaseOutcomeJson, RoundTripsEveryRejectReason) {
  using core::RejectReason;
  for (const auto reason :
       {RejectReason::kInvalidSpec, RejectReason::kUnknownNode,
        RejectReason::kUplinkInfeasible, RejectReason::kDownlinkInfeasible,
        RejectReason::kChannelIdsExhausted, RejectReason::kUnknownChannel}) {
    const core::ReleaseOutcome outcome{Unexpected(
        core::Rejection{reason, "detail with \"quotes\"\nand newline"})};
    const auto parsed = release_outcome_from_json(to_json(outcome));
    ASSERT_TRUE(parsed.has_value())
        << core::to_string(reason) << ": " << parsed.error();
    ASSERT_FALSE(parsed->has_value());
    EXPECT_EQ(parsed->error(), outcome.error()) << core::to_string(reason);
  }
}

TEST(ReleaseOutcomeJson, RejectsMalformedDocuments) {
  // Unknown keys, unknown reasons, both/neither arms — all loud failures.
  EXPECT_FALSE(release_outcome_from_json(R"({"freed": 1})").has_value());
  EXPECT_FALSE(release_outcome_from_json(
                   R"({"rejected": {"reason": "cosmic rays"}})")
                   .has_value());
  EXPECT_FALSE(release_outcome_from_json(R"({})").has_value());
  EXPECT_FALSE(release_outcome_from_json(
                   R"({"released": 1, "rejected":)"
                   R"( {"reason": "unknown channel"}})")
                   .has_value());
  EXPECT_FALSE(release_outcome_from_json(
                   R"({"rejected": {"detail": "no reason"}})")
                   .has_value());
  // IDs are 16-bit; out-of-range must fail, not truncate.
  EXPECT_FALSE(release_outcome_from_json(R"({"released": 65536})")
                   .has_value());
  EXPECT_FALSE(
      release_outcome_from_json(R"({"released": 1} trailing)").has_value());
}

}  // namespace
}  // namespace rtether::scenario
