#pragma once

/// @file bytes.hpp
/// Bounds-checked big-endian (network byte order) serialization primitives
/// used by every wire format in `net/`.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace rtether {

/// Appends network-byte-order fields to a growable buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Pre-reserves capacity to avoid reallocation for known frame sizes.
  explicit ByteWriter(std::size_t reserve_bytes) {
    buffer_.reserve(reserve_bytes);
  }

  /// Takes over `reuse`'s storage, cleared but with capacity kept: the
  /// simulator's frame-arena hot paths serialize into a pooled buffer and
  /// move it back with `take()`, so a steady-state frame costs no
  /// allocation.
  explicit ByteWriter(std::vector<std::uint8_t>&& reuse)
      : buffer_(std::move(reuse)) {
    buffer_.clear();
  }

  void write_u8(std::uint8_t v) { buffer_.push_back(v); }

  void write_u16(std::uint16_t v) {
    write_u8(static_cast<std::uint8_t>(v >> 8));
    write_u8(static_cast<std::uint8_t>(v));
  }

  void write_u32(std::uint32_t v) {
    write_u16(static_cast<std::uint16_t>(v >> 16));
    write_u16(static_cast<std::uint16_t>(v));
  }

  /// 48-bit field (MAC addresses, the paper's 48-bit absolute deadline).
  void write_u48(std::uint64_t v) {
    write_u16(static_cast<std::uint16_t>(v >> 32));
    write_u32(static_cast<std::uint32_t>(v));
  }

  void write_u64(std::uint64_t v) {
    write_u32(static_cast<std::uint32_t>(v >> 32));
    write_u32(static_cast<std::uint32_t>(v));
  }

  void write_bytes(std::span<const std::uint8_t> bytes) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  /// Appends `count` zero bytes (padding).
  void write_zeros(std::size_t count) {
    buffer_.insert(buffer_.end(), count, std::uint8_t{0});
  }

  [[nodiscard]] std::size_t size() const { return buffer_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const& {
    return buffer_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() && {
    return std::move(buffer_);
  }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Reads network-byte-order fields from a fixed buffer. Every read is
/// bounds-checked; a short buffer yields nullopt instead of UB, so malformed
/// frames surface as parse errors.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }

  [[nodiscard]] std::optional<std::uint8_t> read_u8() {
    if (remaining() < 1) return std::nullopt;
    return data_[pos_++];
  }

  [[nodiscard]] std::optional<std::uint16_t> read_u16() {
    return read_be<std::uint16_t>(2);
  }

  [[nodiscard]] std::optional<std::uint32_t> read_u32() {
    return read_be<std::uint32_t>(4);
  }

  [[nodiscard]] std::optional<std::uint64_t> read_u48() {
    return read_be<std::uint64_t>(6);
  }

  [[nodiscard]] std::optional<std::uint64_t> read_u64() {
    return read_be<std::uint64_t>(8);
  }

  /// Returns a view of the next `count` bytes and advances, or nullopt.
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> read_bytes(
      std::size_t count) {
    if (remaining() < count) return std::nullopt;
    auto view = data_.subspan(pos_, count);
    pos_ += count;
    return view;
  }

  /// Skips `count` bytes; false if the buffer is too short.
  [[nodiscard]] bool skip(std::size_t count) {
    if (remaining() < count) return false;
    pos_ += count;
    return true;
  }

 private:
  template <typename T>
  [[nodiscard]] std::optional<T> read_be(std::size_t width) {
    if (remaining() < width) return std::nullopt;
    T value = 0;
    for (std::size_t i = 0; i < width; ++i) {
      value = static_cast<T>(value << 8 | data_[pos_ + i]);
    }
    pos_ += width;
    return value;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_{0};
};

}  // namespace rtether
