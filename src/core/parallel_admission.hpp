#pragma once

/// @file parallel_admission.hpp
/// Multi-core admission control by egress-link sharding.
///
/// The paper's admission test is per-link and per-direction (Eqs 18.2–18.5):
/// deciding a channel request reads and mutates exactly two "processors" —
/// the source node's uplink and the destination node's downlink. Requests
/// that touch disjoint links are therefore independent, and a switch serving
/// hundreds of nodes can run their feasibility analyses on all cores at
/// once.
///
/// `ParallelAdmissionEngine` makes that concrete while keeping the paper's
/// semantics bit-exact. A batch is processed in three phases:
///
///   1. **Shard** (sequential, cheap): each valid request is an edge between
///      its two link directions in the link-conflict graph; union-find over
///      that graph groups links into connected components. All requests
///      whose links fall in one component form one shard, kept in submission
///      order. Cross-link ordering is thereby resolved *before* any
///      concurrency exists: two requests that could ever observe each other
///      share a component by construction.
///   2. **Decide** (parallel): each shard worker gets a private projection
///      of the network state (wholesale copies of exactly its links' task
///      sets) and borrows the engine's per-link `LinkScanCache`s — links are
///      partitioned across shards, so no lock is ever taken — a hard
///      invariant, statically enforced: `parallel_admission.cpp` must never
///      name a mutex type (`scripts/lint_invariants.py`, rule
///      `lock-free-path`, gates CI on it). Workers run
///      the identical DPS-candidate loop and cached feasibility trial as
///      the sequential engine (`admission_internal::cached_candidate_test`),
///      using pre-reserved placeholder channel IDs, and record per-request
///      decisions into disjoint slots.
///   3. **Merge** (sequential, O(1) per request): walk the batch in
///      submission order, allocate the real channel ID for each accept
///      (smallest-free order — exactly what the sequential controller would
///      have assigned), install the channel, and stitch outcomes together.
///      The borrowed caches return home; they are ID-agnostic, so the
///      placeholder/real-ID split is invisible to them.
///
/// The result is **decision-identical** to feeding the same stream through
/// `AdmissionController::request` one call at a time: same accepts, same
/// rejects, same channel IDs, same partitions, same rejection reasons and
/// diagnostic strings. Streams whose conflict graph collapses into one
/// component (all-to-all traffic) degrade gracefully to the single-threaded
/// batched path — correctness never depends on shardability. Requirements:
/// the partitioner's `candidates()` must be pure per-call and must read only
/// the two links the spec touches (true for SDPS/ADPS/UDPS/Search).
///
/// Churn is first-class: `release()` tears a channel down between batches,
/// and `process()` drives a mixed admit/release stream — runs of admissions
/// execute through the sharded path, each release is a (cheap) barrier.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/expected.hpp"
#include "common/thread_pool.hpp"
#include "core/admission.hpp"

namespace rtether::core {

/// Tuning knobs for the parallel engine.
struct ParallelAdmissionConfig {
  /// Knobs shared with the sequential engines (demand-scan strategy).
  AdmissionConfig admission{};
  /// Worker threads. 0 = one per hardware thread (at least one).
  unsigned threads{0};
  /// Batches below this size skip sharding: per-shard setup (state
  /// projection, cache hand-off) would dominate the analysis itself.
  std::size_t min_parallel_batch{64};
};

// `ChannelOp` / `ChurnResult` — the mixed admit/release stream vocabulary —
// live in admission.hpp now that every backend shares them.

class ParallelAdmissionEngine {
 public:
  ParallelAdmissionEngine(std::uint32_t node_count,
                          std::unique_ptr<DeadlinePartitioner> partitioner,
                          ParallelAdmissionConfig config = {});

  /// Admits a batch across all workers. Results are 1:1 with `requests` in
  /// submission order and identical to the sequential controller's.
  [[nodiscard]] BatchResult admit_batch(std::span<const ChannelRequest> requests);

  /// Single-request admission (sequential fast path, shared state).
  [[nodiscard]] AdmitOutcome admit(const ChannelSpec& spec);

  /// Releases an established channel (teardown); typed `kUnknownChannel`
  /// rejection if the ID is not live. Safe between batches; the affected
  /// link caches are downdated.
  [[nodiscard]] ReleaseOutcome release(ChannelId id);

  /// Pre-typed-outcome release shape; kept one release for callers still
  /// migrating to `ReleaseOutcome` / the `AdmissionBackend` surface.
  [[deprecated("use release(); it reports a typed ReleaseOutcome")]]
  bool release_ok(ChannelId id) {
    return release(id).has_value();
  }

  /// Drives a mixed admit/release stream. Consecutive admissions form runs
  /// that go through the sharded batch path; each release is applied at its
  /// exact stream position, so outcomes match a sequential replay op by op.
  [[nodiscard]] ChurnResult process(std::span<const ChannelOp> ops);

  [[nodiscard]] const NetworkState& state() const { return engine_.state(); }
  [[nodiscard]] const AdmissionStats& stats() const {
    return engine_.stats();
  }
  [[nodiscard]] const DeadlinePartitioner& partitioner() const {
    return engine_.partitioner();
  }
  [[nodiscard]] unsigned thread_count() const { return pool_.size(); }

  /// Reboot-reset. Safe between batches: every piece of persistent state
  /// lives in the sequential engine (shard workers only borrow it).
  void reset() { engine_.reset(); }

  /// Shards the most recent `admit_batch` split into (1 when it fell back
  /// to the sequential path; 0 before any batch). Diagnostics and benches.
  [[nodiscard]] std::size_t last_shard_count() const {
    return last_shard_count_;
  }

 private:
  struct Shard;

  /// The sharded path. Classifies and shards the batch; falls back to the
  /// sequential engine when the conflict graph collapses to one component
  /// or channel-ID headroom could make decisions order-dependent.
  BatchResult admit_batch_sharded(std::span<const ChannelRequest> requests);

  /// The sequential engine owns every piece of persistent state (network
  /// state, ID allocator, stats, per-link caches); the parallel layer
  /// borrows it per batch and hands it back. Single-request admits and
  /// sub-threshold batches go straight through it.
  AdmissionEngine engine_;
  ThreadPool pool_;
  std::size_t min_parallel_batch_;
  std::size_t last_shard_count_{0};
};

}  // namespace rtether::core
