#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rtether::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  const Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_TRUE(sim.run_all());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, SameTickIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  EXPECT_TRUE(sim.run_all());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  Tick seen = 0;
  sim.schedule_at(100, [&] {
    sim.schedule_in(5, [&] { seen = sim.now(); });
  });
  EXPECT_TRUE(sim.run_all());
  EXPECT_EQ(seen, 105u);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) {
      sim.schedule_in(10, chain);
    }
  };
  sim.schedule_at(0, chain);
  EXPECT_TRUE(sim.run_all());
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 40u);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int executed = 0;
  sim.schedule_at(10, [&] { ++executed; });
  sim.schedule_at(20, [&] { ++executed; });
  sim.schedule_at(30, [&] { ++executed; });
  EXPECT_TRUE(sim.run_until(20));
  EXPECT_EQ(executed, 2);
  EXPECT_EQ(sim.now(), 20u);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  EXPECT_TRUE(sim.run_until(500));
  EXPECT_EQ(sim.now(), 500u);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, SchedulingIntoThePastAsserts) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  EXPECT_TRUE(sim.run_all());
  EXPECT_DEATH(sim.schedule_at(5, [] {}), "past");
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.schedule_at(static_cast<Tick>(i), [] {});
  }
  EXPECT_TRUE(sim.run_all());
  EXPECT_EQ(sim.executed_events(), 7u);
}

TEST(Simulator, RunawayGuardReportsInsteadOfSpinning) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.schedule_in(1, forever); };
  sim.schedule_at(0, forever);
  // A self-rescheduling loop exhausts the event budget; run_all must return
  // false (in every build type) rather than spin or abort the process.
  EXPECT_FALSE(sim.run_all(1000));
  EXPECT_EQ(sim.executed_events(), 1000u);
  EXPECT_GT(sim.pending(), 0u);
  // The simulation is resumable after the report.
  EXPECT_FALSE(sim.run_all(10));
  EXPECT_EQ(sim.executed_events(), 1010u);
}

TEST(Simulator, RunUntilHasTheSameRunawayGuard) {
  Simulator sim;
  // A same-tick self-rescheduling loop: the seed kernel's run_until would
  // spin forever here because the clock never passes the horizon.
  std::function<void()> same_tick = [&] { sim.schedule_in(0, same_tick); };
  sim.schedule_at(5, same_tick);
  EXPECT_FALSE(sim.run_until(10, 1000));
  EXPECT_EQ(sim.executed_events(), 1000u);
  EXPECT_EQ(sim.now(), 5u);  // stuck tick preserved for inspection
  EXPECT_GT(sim.pending(), 0u);
  // Resumable: the guard reports, it does not corrupt the queue.
  EXPECT_FALSE(sim.run_until(10, 50));
  EXPECT_EQ(sim.executed_events(), 1050u);
}

TEST(Simulator, RunUntilBudgetCountsOnlyDueEvents) {
  Simulator sim;
  int executed = 0;
  sim.schedule_at(10, [&] { ++executed; });
  sim.schedule_at(20, [&] { ++executed; });
  sim.schedule_at(9'999, [&] { ++executed; });
  // Budget larger than the due events: clean completion, pending future
  // event untouched.
  EXPECT_TRUE(sim.run_until(100, 2));
  EXPECT_EQ(executed, 2);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_TRUE(sim.run_all());
  EXPECT_EQ(executed, 3);
}

TEST(Simulator, TimersFireWithContextArgAndTime) {
  // The allocation-free function-pointer timer the protocol layers use.
  struct Capture {
    std::vector<std::pair<std::uint64_t, Tick>> fired;
  } capture;
  Simulator sim;
  sim.schedule_timer(
      30,
      [](void* context, std::uint64_t arg, Tick now) {
        static_cast<Capture*>(context)->fired.emplace_back(arg, now);
      },
      &capture, 7);
  sim.schedule_timer(
      10,
      [](void* context, std::uint64_t arg, Tick now) {
        static_cast<Capture*>(context)->fired.emplace_back(arg, now);
      },
      &capture, 9);
  EXPECT_TRUE(sim.run_all());
  ASSERT_EQ(capture.fired.size(), 2u);
  EXPECT_EQ(capture.fired[0], (std::pair<std::uint64_t, Tick>{9, 10}));
  EXPECT_EQ(capture.fired[1], (std::pair<std::uint64_t, Tick>{7, 30}));
}

TEST(Simulator, FarEventsBeyondTheCalendarWindowStayOrdered) {
  // Events far past the calendar window live in the far heap and migrate
  // into buckets as the window advances; the executed order must remain
  // the exact (time, sequence) total order regardless of distance.
  Simulator sim;
  std::vector<Tick> order;
  const Tick times[] = {1'000'000, 5, 80'000, 5'000, 1'000'000, 40'000};
  for (const Tick t : times) {
    sim.schedule_at(t, [&order, &sim] { order.push_back(sim.now()); });
  }
  EXPECT_TRUE(sim.run_all());
  EXPECT_EQ(order, (std::vector<Tick>{5, 5'000, 40'000, 80'000, 1'000'000,
                                      1'000'000}));
}

TEST(Simulator, SameFarTickKeepsSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sim.schedule_at(500'000, [&order, i] { order.push_back(i); });
  }
  EXPECT_TRUE(sim.run_all());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Simulator, InsertBelowThePeekedHorizonIsNotLost) {
  // run_until(t) peeks past empty ticks; a later external insert below the
  // peeked position must still execute (cursor pull-back).
  Simulator sim;
  std::vector<Tick> order;
  sim.schedule_at(3'000, [&] { order.push_back(sim.now()); });
  EXPECT_TRUE(sim.run_until(100));
  EXPECT_EQ(sim.now(), 100u);
  sim.schedule_at(200, [&] { order.push_back(sim.now()); });
  sim.schedule_at(150, [&] { order.push_back(sim.now()); });
  EXPECT_TRUE(sim.run_all());
  EXPECT_EQ(order, (std::vector<Tick>{150, 200, 3'000}));
}

TEST(Simulator, BudgetExhaustionLeavesTheQueueSchedulable) {
  // Regression: a budget-exhausted run with the next event far beyond the
  // calendar window must not leave the window jumped ahead of the clock —
  // scheduling near `now()` afterwards has to work and execute first.
  Simulator sim;
  std::vector<Tick> order;
  sim.schedule_at(10, [&] { order.push_back(sim.now()); });
  sim.schedule_at(10'000'000, [&] { order.push_back(sim.now()); });
  // Budget of 1: executes tick 10, then reports with the far event still
  // queued. The clock must stay at 10 and the window must not have moved.
  EXPECT_FALSE(sim.run_until(20'000'000, 1));
  EXPECT_EQ(sim.now(), 10u);
  sim.schedule_in(1, [&] { order.push_back(sim.now()); });
  EXPECT_TRUE(sim.run_all());
  EXPECT_EQ(order, (std::vector<Tick>{10, 11, 10'000'000}));

  // Same shape through run_all's guard.
  Simulator sim2;
  std::vector<Tick> order2;
  sim2.schedule_at(5, [&] { order2.push_back(sim2.now()); });
  sim2.schedule_at(9'000'000, [&] { order2.push_back(sim2.now()); });
  EXPECT_FALSE(sim2.run_all(1));
  EXPECT_EQ(sim2.now(), 5u);
  sim2.schedule_in(2, [&] { order2.push_back(sim2.now()); });
  EXPECT_TRUE(sim2.run_all());
  EXPECT_EQ(order2, (std::vector<Tick>{5, 7, 9'000'000}));
}

TEST(Simulator, InsertAfterIdleFarJumpStillExecutes) {
  // After run_until stops short of a far-away event, scheduling near the
  // clock again must execute before that event (the window only jumps to
  // events that are popped immediately).
  Simulator sim;
  std::vector<Tick> order;
  sim.schedule_at(100'000, [&] { order.push_back(sim.now()); });
  EXPECT_TRUE(sim.run_until(50));
  sim.schedule_at(60, [&] { order.push_back(sim.now()); });
  EXPECT_TRUE(sim.run_all());
  EXPECT_EQ(order, (std::vector<Tick>{60, 100'000}));
}

TEST(Simulator, ClosureSlotsAreRecycled) {
  // Closure storage is a freelist: steady self-rescheduling must not grow
  // the slot pool.
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 1'000) sim.schedule_in(1, chain);
  };
  sim.schedule_at(0, chain);
  EXPECT_TRUE(sim.run_all());
  EXPECT_EQ(count, 1'000);
  EXPECT_LE(sim.closure_slots(), 2u);
}

TEST(Simulator, ArenaRecyclesFrameSlots) {
  Simulator sim;
  FrameArena& arena = sim.arena();
  const FrameIndex a = arena.acquire();
  arena.get(a).bytes.assign(64, 0xab);
  arena.release(a);
  const FrameIndex b = arena.acquire();
  // Pooled slot reused: same index, buffer cleared but capacity kept.
  EXPECT_EQ(b, a);
  EXPECT_TRUE(arena.get(b).bytes.empty());
  EXPECT_GE(arena.get(b).bytes.capacity(), 64u);
  EXPECT_EQ(arena.live(), 1u);
  arena.release(b);
  EXPECT_EQ(arena.live(), 0u);
}

}  // namespace
}  // namespace rtether::sim
