#pragma once

/// @file thread_annotations.hpp
/// Clang thread-safety annotation macros. Under Clang every macro expands to
/// the corresponding `__attribute__` and `-Wthread-safety` turns the
/// annotations into a *static* race detector: every path through every TU is
/// checked at compile time, complementing TSan, which only sees the
/// interleavings the tests happen to produce. Under other compilers the
/// macros expand to nothing, so annotated code builds everywhere.
///
/// Conventions used across the tree (see README "Static analysis"):
///
///   * Lock with `rtether::Mutex`/`rtether::MutexLock` (common/sync.hpp),
///     never raw `std::mutex` — the standard mutex carries no capability
///     attributes, so the analysis cannot see it being locked.
///   * Every field protected by a mutex is marked `GUARDED_BY(mutex_)`.
///   * Single-thread-owned state in multi-threaded components is guarded by
///     a `ThreadRole` capability (e.g. the admission service's dispatcher):
///     functions that may only run on the owning thread are marked
///     `REQUIRES(role)` and the thread's main loop holds the role for its
///     lifetime via `ThreadRoleGuard`.
///   * `NO_THREAD_SAFETY_ANALYSIS` is a documented escape hatch, not a
///     default: each use states the out-of-band synchronization (e.g. a
///     drain barrier) that makes the access safe.

#if defined(__clang__) && !defined(SWIG)
#define RTETHER_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RTETHER_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a class to be a capability (lockable) type.
#define CAPABILITY(x) RTETHER_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define SCOPED_CAPABILITY RTETHER_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a field may only be accessed while holding `x`.
#define GUARDED_BY(x) RTETHER_THREAD_ANNOTATION(guarded_by(x))

/// Declares that the data pointed to by this field is protected by `x`.
#define PT_GUARDED_BY(x) RTETHER_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the listed capabilities (exclusively) on entry.
#define REQUIRES(...) \
  RTETHER_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must hold the listed capabilities (at least shared) on entry.
#define REQUIRES_SHARED(...) \
  RTETHER_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the listed capabilities and does not release them.
#define ACQUIRE(...) RTETHER_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function acquires the listed capabilities in shared mode.
#define ACQUIRE_SHARED(...) \
  RTETHER_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the listed capabilities (held on entry).
#define RELEASE(...) RTETHER_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function releases the listed capabilities held in shared mode.
#define RELEASE_SHARED(...) \
  RTETHER_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function attempts to acquire the capability; first argument is the return
/// value that signals success.
#define TRY_ACQUIRE(...) \
  RTETHER_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention).
#define EXCLUDES(...) RTETHER_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime) that the calling thread holds the capability; the
/// analysis assumes it afterwards.
#define ASSERT_CAPABILITY(x) RTETHER_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) RTETHER_THREAD_ANNOTATION(lock_returned(x))

/// Turns the analysis off for one function. Every use must carry a comment
/// naming the out-of-band synchronization that justifies it.
#define NO_THREAD_SAFETY_ANALYSIS \
  RTETHER_THREAD_ANNOTATION(no_thread_safety_analysis)
