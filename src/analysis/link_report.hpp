#pragma once

/// @file link_report.hpp
/// Operator-facing diagnostics over a live admission-control state: per-link
/// schedulability detail (load, utilization, busy period, slack) and
/// what-if headroom probes ("how many more channels like this would fit?").
/// This is the paper's system-state SS made inspectable — the switch-side
/// view an industrial commissioning tool would display.

#include <string>
#include <vector>

#include "core/network_state.hpp"
#include "edf/task_set.hpp"

namespace rtether::analysis {

/// Snapshot of one link direction.
struct LinkReport {
  NodeId node;
  core::LinkDirection direction{core::LinkDirection::kUplink};
  std::size_t channels{0};
  double utilization{0.0};
  /// Length of the first busy period (0 for an idle link).
  Slot busy_period{0};
  /// Smallest relative deadline scheduled on the link (0 if none).
  Slot min_deadline{0};
  /// min over checkpoints t of (t − h(t)) within the busy period — the
  /// link's worst-case slack in slots; min_deadline for an idle link’s
  /// vacuous case is reported as slack = min_deadline.
  Slot min_slack{0};
};

/// Reports for every non-empty link direction, bottlenecks (smallest
/// slack) first.
[[nodiscard]] std::vector<LinkReport> network_report(
    const core::NetworkState& state);

/// Renders the report as a console table (top `max_rows` rows).
[[nodiscard]] std::string render_network_report(
    const core::NetworkState& state, std::size_t max_rows = 16);

/// What-if probe: the number of additional pseudo-tasks {P, C, d} the link
/// can accept before its EDF feasibility test fails (capped at `limit`).
/// Pure analysis — the task set is copied, nothing is admitted.
[[nodiscard]] std::size_t link_headroom(const edf::TaskSet& link, Slot period,
                                        Slot capacity, Slot deadline,
                                        std::size_t limit = 1024);

}  // namespace rtether::analysis
