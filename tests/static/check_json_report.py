#!/usr/bin/env python3
"""ctest helper: asserts the invariant linter's --json report is
machine-readable and structurally complete (static.lint_json_report)."""

import json
import subprocess
import sys
import tempfile
from pathlib import Path


def main() -> int:
    root = Path(sys.argv[1]).resolve()
    out = Path(tempfile.mkdtemp(prefix="rtether_lint_")) / "report.json"
    proc = subprocess.run(
        [
            sys.executable,
            str(root / "scripts" / "lint_invariants.py"),
            "--file",
            str(root / "tests" / "static" / "seeded" / "hotpath_new.cpp"),
            "--profile",
            "hot-path",
            "--json",
            str(out),
        ],
        stdout=subprocess.DEVNULL,
    )
    if proc.returncode != 1:
        print(f"expected exit 1 on the seeded file, got {proc.returncode}")
        return 1
    data = json.loads(out.read_text(encoding="utf-8"))
    if data.get("version") != 1:
        print(f"bad report version: {data.get('version')}")
        return 1
    findings = data.get("findings", [])
    required = {"rule", "file", "line", "message", "snippet"}
    if not findings or not all(required <= set(f) for f in findings):
        print(f"malformed findings: {findings}")
        return 1
    if not any(f["rule"] == "hot-path-alloc" for f in findings):
        print("hot-path-alloc did not fire on the seeded allocation")
        return 1
    print(f"json report ok: {len(findings)} finding(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
