#include "core/topology.hpp"

#include <gtest/gtest.h>

namespace rtether::core {
namespace {

TEST(LinkId, FactoryAndComparison) {
  EXPECT_EQ(LinkId::uplink(NodeId{3}), LinkId::uplink(NodeId{3}));
  EXPECT_NE(LinkId::uplink(NodeId{3}), LinkId::downlink(NodeId{3}));
  EXPECT_NE(LinkId::trunk(SwitchId{0}, SwitchId{1}),
            LinkId::trunk(SwitchId{1}, SwitchId{0}));  // directed
}

TEST(LinkId, ToString) {
  EXPECT_EQ(LinkId::uplink(NodeId{3}).to_string(), "up(n3)");
  EXPECT_EQ(LinkId::downlink(NodeId{7}).to_string(), "down(n7)");
  EXPECT_EQ(LinkId::trunk(SwitchId{0}, SwitchId{2}).to_string(),
            "trunk(s0->s2)");
}

TEST(LinkId, HashDistinguishesKinds) {
  const std::hash<LinkId> h;
  EXPECT_NE(h(LinkId::uplink(NodeId{1})), h(LinkId::downlink(NodeId{1})));
  EXPECT_EQ(h(LinkId::trunk(SwitchId{1}, SwitchId{2})),
            h(LinkId::trunk(SwitchId{1}, SwitchId{2})));
}

TEST(Topology, SingleSwitchRouteIsTwoLinks) {
  const auto topology = Topology::single_switch(4);
  const auto path = topology.route(NodeId{0}, NodeId{3});
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 2u);
  EXPECT_EQ((*path)[0], LinkId::uplink(NodeId{0}));
  EXPECT_EQ((*path)[1], LinkId::downlink(NodeId{3}));
}

TEST(Topology, LineRouteCrossesTrunks) {
  // 3 switches × 2 nodes: nodes 0,1 on s0; 2,3 on s1; 4,5 on s2.
  const auto topology = Topology::switch_line(3, 2);
  const auto path = topology.route(NodeId{0}, NodeId{5});
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 4u);
  EXPECT_EQ((*path)[0], LinkId::uplink(NodeId{0}));
  EXPECT_EQ((*path)[1], LinkId::trunk(SwitchId{0}, SwitchId{1}));
  EXPECT_EQ((*path)[2], LinkId::trunk(SwitchId{1}, SwitchId{2}));
  EXPECT_EQ((*path)[3], LinkId::downlink(NodeId{5}));
}

TEST(Topology, SameSwitchInLineIsLocal) {
  const auto topology = Topology::switch_line(3, 2);
  const auto path = topology.route(NodeId{2}, NodeId{3});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 2u);
}

TEST(Topology, ReverseRouteUsesOppositeTrunkDirection) {
  const auto topology = Topology::switch_line(2, 1);
  const auto forward = topology.route(NodeId{0}, NodeId{1});
  const auto backward = topology.route(NodeId{1}, NodeId{0});
  ASSERT_TRUE(forward && backward);
  EXPECT_EQ((*forward)[1], LinkId::trunk(SwitchId{0}, SwitchId{1}));
  EXPECT_EQ((*backward)[1], LinkId::trunk(SwitchId{1}, SwitchId{0}));
}

TEST(Topology, ShortestPathPreferredInRing) {
  // Ring of 4 switches: 0-1-2-3-0; route s0→s3 must take the direct trunk.
  Topology topology(4, 4);
  for (std::uint32_t n = 0; n < 4; ++n) {
    topology.attach_node(NodeId{n}, SwitchId{n});
  }
  topology.connect_switches(SwitchId{0}, SwitchId{1});
  topology.connect_switches(SwitchId{1}, SwitchId{2});
  topology.connect_switches(SwitchId{2}, SwitchId{3});
  topology.connect_switches(SwitchId{3}, SwitchId{0});
  const auto path = topology.route(NodeId{0}, NodeId{3});
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 3u);
  EXPECT_EQ((*path)[1], LinkId::trunk(SwitchId{0}, SwitchId{3}));
}

TEST(Topology, DeterministicTieBreakByLowestSwitchId) {
  // Two equal-length routes 0→1→3 and 0→2→3: BFS with sorted neighbours
  // must pick via switch 1.
  Topology topology(2, 4);
  topology.attach_node(NodeId{0}, SwitchId{0});
  topology.attach_node(NodeId{1}, SwitchId{3});
  topology.connect_switches(SwitchId{0}, SwitchId{2});
  topology.connect_switches(SwitchId{0}, SwitchId{1});
  topology.connect_switches(SwitchId{1}, SwitchId{3});
  topology.connect_switches(SwitchId{2}, SwitchId{3});
  const auto path = topology.route(NodeId{0}, NodeId{1});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ((*path)[1], LinkId::trunk(SwitchId{0}, SwitchId{1}));
  EXPECT_EQ((*path)[2], LinkId::trunk(SwitchId{1}, SwitchId{3}));
}

TEST(Topology, DisconnectedFabricHasNoRoute) {
  Topology topology(2, 2);
  topology.attach_node(NodeId{0}, SwitchId{0});
  topology.attach_node(NodeId{1}, SwitchId{1});
  // No trunk between s0 and s1.
  EXPECT_FALSE(topology.route(NodeId{0}, NodeId{1}).has_value());
}

TEST(Topology, UnattachedNodeHasNoRoute) {
  Topology topology(2, 1);
  topology.attach_node(NodeId{0}, SwitchId{0});
  EXPECT_FALSE(topology.route(NodeId{0}, NodeId{1}).has_value());
  EXPECT_FALSE(topology.attachment(NodeId{1}).has_value());
}

TEST(Topology, SelfRouteWithinOneSwitch) {
  const auto topology = Topology::single_switch(2);
  const auto path = topology.route(NodeId{0}, NodeId{0});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 2u);
}

TEST(Topology, DuplicateTrunkIsIdempotent) {
  Topology topology(0, 2);
  topology.connect_switches(SwitchId{0}, SwitchId{1});
  topology.connect_switches(SwitchId{0}, SwitchId{1});
  EXPECT_EQ(topology.neighbours(SwitchId{0}).size(), 1u);
  EXPECT_EQ(topology.neighbours(SwitchId{1}).size(), 1u);
}

}  // namespace
}  // namespace rtether::core
