#pragma once

/// @file rational.hpp
/// Exact rational arithmetic for utilization tests.
///
/// The Liu & Layland constraint ΣC_i/P_i ≤ 1 (paper Eq 18.2) is a hard
/// admission boundary; evaluating it in floating point would admit or reject
/// channels that sit exactly on the boundary depending on summation order.
/// `Rational` keeps the sum exact: 64-bit numerator/denominator, normalized
/// after every operation, with 128-bit intermediates and overflow assertions.

#include <compare>
#include <cstdint>
#include <string>

namespace rtether {

namespace detail {
/// 128-bit intermediate for overflow-free cross-multiplication.
/// `__extension__` silences -Wpedantic: __int128 is a GCC/Clang extension,
/// which this library requires (documented in README prerequisites).
__extension__ typedef __int128 Int128;
}  // namespace detail

class Rational {
 public:
  /// Zero.
  constexpr Rational() = default;

  /// `value / 1`.
  constexpr explicit Rational(std::int64_t value) : num_(value), den_(1) {}

  /// `num / den`; den must be non-zero. The sign lives in the numerator.
  Rational(std::int64_t num, std::int64_t den);

  [[nodiscard]] constexpr std::int64_t num() const { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const { return den_; }

  [[nodiscard]] Rational operator+(const Rational& rhs) const;
  [[nodiscard]] Rational operator-(const Rational& rhs) const;
  [[nodiscard]] Rational operator*(const Rational& rhs) const;
  [[nodiscard]] Rational operator/(const Rational& rhs) const;
  Rational& operator+=(const Rational& rhs);
  Rational& operator-=(const Rational& rhs);

  [[nodiscard]] std::strong_ordering operator<=>(const Rational& rhs) const;
  [[nodiscard]] bool operator==(const Rational& rhs) const;

  /// Best double approximation (for reporting only, never for decisions).
  [[nodiscard]] double to_double() const;

  /// "num/den" (or just "num" when den == 1).
  [[nodiscard]] std::string to_string() const;

 private:
  /// Reduces to lowest terms with a positive denominator; asserts that the
  /// 128-bit intermediate fits back into 64 bits.
  static Rational normalized(detail::Int128 num, detail::Int128 den);

  std::int64_t num_{0};
  std::int64_t den_{1};
};

}  // namespace rtether
