#include "scenario/shrinker.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"

namespace rtether::scenario {

namespace {

/// Rebuilds `spec` keeping only ops with `keep[i]`. Release targets are
/// remapped; releases whose target admit was dropped are dropped too (their
/// meaning — "tear down that channel" — left with it).
ScenarioSpec keep_ops(const ScenarioSpec& spec, const std::vector<bool>& keep) {
  ScenarioSpec out = spec;
  out.ops.clear();
  std::vector<std::uint32_t> remap(spec.ops.size(),
                                   ScenarioOp::kNoTarget);
  for (std::size_t i = 0; i < spec.ops.size(); ++i) {
    if (!keep[i]) continue;
    const auto& op = spec.ops[i];
    if (op.kind == ScenarioOp::Kind::kRelease &&
        op.target != ScenarioOp::kNoTarget &&
        remap[op.target] == ScenarioOp::kNoTarget) {
      continue;  // its admit op is gone
    }
    ScenarioOp copy = op;
    if (copy.kind == ScenarioOp::Kind::kRelease &&
        copy.target != ScenarioOp::kNoTarget) {
      copy.target = remap[copy.target];
    }
    remap[i] = static_cast<std::uint32_t>(out.ops.size());
    out.ops.push_back(copy);
  }
  return out;
}

class Shrinker {
 public:
  Shrinker(const ScenarioSpec& failing, const ShrinkOptions& options)
      : options_(options), best_(failing) {}

  ShrinkOutcome run() {
    const auto original = run_scenario(best_, options_.runner);
    RTETHER_ASSERT_MSG(!original.passed,
                       "shrink_scenario needs a failing scenario");
    failure_ = original;

    shrink_ops();
    shrink_faults();
    shrink_nodes();
    shrink_quantities();
    shrink_sim_knobs();
    // A smaller op stream may have become reducible again after the
    // quantity pass (e.g. a channel only needed for load is now inert).
    shrink_ops();

    best_.name = best_.name.empty() ? "minimized" : best_.name + "-min";
    return ShrinkOutcome{best_, attempts_, failure_};
  }

 private:
  /// Replays a candidate; adopts it as the new best when it still fails.
  bool try_adopt(const ScenarioSpec& candidate) {
    if (attempts_ >= options_.max_attempts) return false;
    ++attempts_;
    auto result = run_scenario(candidate, options_.runner);
    if (result.passed) return false;
    best_ = candidate;
    failure_ = std::move(result);
    return true;
  }

  /// ddmin-style: remove chunks of halving size, then single ops, until a
  /// fixed point.
  void shrink_ops() {
    bool progress = true;
    while (progress && attempts_ < options_.max_attempts) {
      progress = false;
      for (std::size_t chunk = std::max<std::size_t>(best_.ops.size() / 2, 1);
           chunk >= 1; chunk /= 2) {
        for (std::size_t start = 0; start < best_.ops.size();) {
          std::vector<bool> keep(best_.ops.size(), true);
          const std::size_t end =
              std::min(start + chunk, best_.ops.size());
          for (std::size_t i = start; i < end; ++i) keep[i] = false;
          if (try_adopt(keep_ops(best_, keep))) {
            progress = true;  // indices shifted; rescan from here
          } else {
            start = end;
          }
          if (attempts_ >= options_.max_attempts) return;
        }
        if (chunk == 1) break;
      }
    }
  }

  /// ddmin over the fault plan: remove chunks of halving size, then single
  /// events. Removal-only by design — surviving events keep their relative
  /// order and their at_slot anchors, so the tick-ordering invariant the
  /// runner relies on (nondecreasing at_slot, faults firing where the
  /// original run put them relative to the op stream) is preserved by
  /// construction. Reordering or re-anchoring faults would shrink into a
  /// *different* scenario, not a smaller replay of the same failure.
  void shrink_faults() {
    bool progress = true;
    while (progress && attempts_ < options_.max_attempts) {
      progress = false;
      for (std::size_t chunk =
               std::max<std::size_t>(best_.faults.size() / 2, 1);
           chunk >= 1 && !best_.faults.empty(); chunk /= 2) {
        for (std::size_t start = 0; start < best_.faults.size();) {
          ScenarioSpec candidate = best_;
          const std::size_t end =
              std::min(start + chunk, candidate.faults.size());
          candidate.faults.erase(
              candidate.faults.begin() +
                  static_cast<std::ptrdiff_t>(start),
              candidate.faults.begin() + static_cast<std::ptrdiff_t>(end));
          if (try_adopt(candidate)) {
            progress = true;  // indices shifted; rescan from here
          } else {
            start = end;
          }
          if (attempts_ >= options_.max_attempts) return;
        }
        if (chunk == 1) break;
      }
    }
  }

  /// Densely renumbers the nodes the remaining ops actually reference
  /// (preserving order) and drops the rest from the topology.
  void shrink_nodes() {
    const std::uint32_t old_nodes = best_.topology.nodes;
    std::vector<bool> used(old_nodes, false);
    for (const auto& op : best_.ops) {
      if (op.kind != ScenarioOp::Kind::kAdmit) continue;
      for (const NodeId node : {op.spec.source, op.spec.destination}) {
        if (node.value() < old_nodes) {
          used[node.value()] = true;
        }
      }
    }
    // Fault events pin their node too — dropping or renumbering it out
    // from under the plan would make the candidate malformed.
    for (const auto& fault : best_.faults) {
      if (fault.node.value() < old_nodes) {
        used[fault.node.value()] = true;
      }
    }
    std::vector<std::uint32_t> remap(old_nodes, 0);
    std::uint32_t next = 0;
    for (std::uint32_t n = 0; n < old_nodes; ++n) {
      if (used[n]) remap[n] = next++;
    }
    const std::uint32_t new_nodes = std::max(next, 1U);
    if (new_nodes >= old_nodes) return;

    ScenarioSpec candidate = best_;
    candidate.topology.nodes = new_nodes;
    candidate.topology.switches =
        std::min(candidate.topology.switches, new_nodes);
    for (auto& op : candidate.ops) {
      if (op.kind != ScenarioOp::Kind::kAdmit) continue;
      auto rename = [&](NodeId node) {
        // Unknown-node references stay unknown relative to the new size.
        if (node.value() >= old_nodes) return NodeId{new_nodes};
        return NodeId{remap[node.value()]};
      };
      op.spec.source = rename(op.spec.source);
      op.spec.destination = rename(op.spec.destination);
    }
    for (auto& fault : candidate.faults) {
      if (fault.node.value() < old_nodes) {
        fault.node = NodeId{remap[fault.node.value()]};
      }
    }
    (void)try_adopt(candidate);
  }

  /// Per-channel quantity minimization: periods toward C, deadlines toward
  /// the 2C floor, capacities toward 1 — halving steps, biggest first.
  void shrink_quantities() {
    bool progress = true;
    while (progress && attempts_ < options_.max_attempts) {
      progress = false;
      for (std::size_t i = 0; i < best_.ops.size(); ++i) {
        if (best_.ops[i].kind != ScenarioOp::Kind::kAdmit) continue;
        progress |= shrink_field(
            i, [](core::ChannelSpec& s) -> Slot& { return s.period; },
            [](const core::ChannelSpec& s) { return s.capacity; });
        progress |= shrink_field(
            i, [](core::ChannelSpec& s) -> Slot& { return s.deadline; },
            [](const core::ChannelSpec& s) { return 2 * s.capacity; });
        progress |= shrink_field(
            i, [](core::ChannelSpec& s) -> Slot& { return s.capacity; },
            [](const core::ChannelSpec&) { return Slot{1}; });
      }
    }
  }

  /// Halves `field` toward `floor(spec)` while the failure persists; tries
  /// the floor itself first (the biggest single step).
  template <typename Field, typename Floor>
  bool shrink_field(std::size_t op_index, Field field, Floor floor) {
    bool progress = false;
    for (;;) {
      if (attempts_ >= options_.max_attempts) return progress;
      ScenarioSpec candidate = best_;
      auto& spec = candidate.ops[op_index].spec;
      const Slot lo = floor(spec);
      Slot& value = field(spec);
      if (value <= lo) return progress;
      const Slot halfway = lo + (value - lo) / 2;
      // Try the floor first; fall back to halving toward it.
      value = lo;
      if (try_adopt(candidate)) {
        progress = true;
        continue;
      }
      if (halfway == lo) return progress;  // halving would replay the floor
      ScenarioSpec half = best_;
      field(half.ops[op_index].spec) = halfway;
      if (try_adopt(half)) {
        progress = true;
        continue;
      }
      return progress;
    }
  }

  /// Simulation knobs: a repro without best-effort noise, or without the
  /// simulation phase at all, replays much faster.
  void shrink_sim_knobs() {
    if (best_.with_best_effort) {
      ScenarioSpec candidate = best_;
      candidate.with_best_effort = false;
      candidate.best_effort_load = 0.0;
      candidate.bursty_best_effort = false;
      (void)try_adopt(candidate);
    }
    if (best_.simulate) {
      ScenarioSpec candidate = best_;
      candidate.simulate = false;
      // A fault plan lives on the simulated wire; keep the candidate
      // well-formed rather than shrinking into a kMalformedSpec failure.
      candidate.faults.clear();
      (void)try_adopt(candidate);
    }
    if (best_.simulate && best_.run_slots > 100) {
      ScenarioSpec candidate = best_;
      candidate.run_slots = 100;
      // Drop fault events whose windows no longer fit the shorter run
      // (removal-only: the survivors keep their order and anchors).
      std::erase_if(candidate.faults, [&](const sim::FaultEvent& fault) {
        return fault.kind != sim::FaultKind::kMgmtDelay &&
               fault.at_slot >= candidate.run_slots;
      });
      (void)try_adopt(candidate);
    }
  }

  const ShrinkOptions& options_;
  ScenarioSpec best_;
  ScenarioResult failure_;
  std::size_t attempts_{0};
};

}  // namespace

ShrinkOutcome shrink_scenario(const ScenarioSpec& failing,
                              const ShrinkOptions& options) {
  return Shrinker(failing, options).run();
}

}  // namespace rtether::scenario
