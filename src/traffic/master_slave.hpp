#pragma once

/// @file master_slave.hpp
/// The paper's industrial traffic pattern (Fig 18.1 / §18.4.2 experiment):
/// M master nodes and S slave nodes; channel requests pick a uniform-random
/// master and a uniform-random slave. With M ≪ S the master links become the
/// bottlenecks ADPS is designed to relieve.

#include <cstdint>
#include <vector>

#include "common/random.hpp"
#include "core/channel.hpp"
#include "traffic/distribution.hpp"

namespace rtether::traffic {

/// Which way channels flow.
enum class FlowDirection : std::uint8_t {
  /// Master → slave (commands/setpoints): master *uplinks* are hot.
  kMasterToSlave,
  /// Slave → master (sensor readings): master *downlinks* are hot.
  kSlaveToMaster,
  /// Each request flips a fair coin between the two.
  kMixed,
};

[[nodiscard]] const char* to_string(FlowDirection direction);

struct MasterSlaveConfig {
  std::uint32_t masters{10};
  std::uint32_t slaves{50};
  FlowDirection direction{FlowDirection::kMasterToSlave};
  /// Paper's Fig 18.5 parameters: C=3, P=100, d=40.
  SlotDistribution period = SlotDistribution::fixed(100);
  SlotDistribution capacity = SlotDistribution::fixed(3);
  SlotDistribution deadline = SlotDistribution::fixed(40);
};

/// Seeded stream of channel requests over the master/slave node split.
/// Node IDs: masters are [0, M), slaves are [M, M+S).
class MasterSlaveWorkload {
 public:
  MasterSlaveWorkload(MasterSlaveConfig config, std::uint64_t seed);

  [[nodiscard]] std::uint32_t node_count() const {
    return config_.masters + config_.slaves;
  }
  [[nodiscard]] bool is_master(NodeId node) const {
    return node.value() < config_.masters;
  }
  [[nodiscard]] const MasterSlaveConfig& config() const { return config_; }

  /// Next channel request in the stream.
  [[nodiscard]] core::ChannelSpec next();

  /// The next `count` requests.
  [[nodiscard]] std::vector<core::ChannelSpec> generate(std::size_t count);

 private:
  MasterSlaveConfig config_;
  Rng rng_;
};

}  // namespace rtether::traffic
