#pragma once

/// @file frame.hpp
/// The frame as it travels through the simulated network. Headers are real
/// serialized bytes (Ethernet, and for data frames IPv4+UDP with the
/// deadline encoding of §18.2.2) so every hop exercises the same
/// classification logic a real RT-layer switch port would run; bulk payload
/// is accounted by size only.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "net/address.hpp"
#include "net/deadline_codec.hpp"
#include "net/ethernet.hpp"

namespace rtether::sim {

/// Traffic class, decided from the wire bytes exactly as the paper's
/// switch decides it (Fig 18.2's two output queues + management path).
enum class FrameClass : std::uint8_t {
  /// EtherType kRtManagement: channel establishment / teardown.
  kManagement,
  /// IPv4 with ToS == 255: real-time data, EDF-queued.
  kRealTime,
  /// Everything else: best-effort, FCFS-queued.
  kBestEffort,
};

[[nodiscard]] const char* to_string(FrameClass cls);

/// Classification result parsed from the leading header bytes.
struct FrameInfo {
  FrameClass cls{FrameClass::kBestEffort};
  net::MacAddress source_mac;
  net::MacAddress destination_mac;
  /// Present iff cls == kRealTime.
  std::optional<net::RtFrameTag> rt_tag;
};

/// Parses Ethernet (+IPv4) headers and classifies; nullopt when the bytes do
/// not even contain an Ethernet header.
[[nodiscard]] std::optional<FrameInfo> classify_frame(
    std::span<const std::uint8_t> bytes);

/// A frame instance in flight.
struct SimFrame {
  /// Unique per simulation run (monotonic), for stable tie-breaks & traces.
  std::uint64_t id{0};
  /// Serialized headers (and, for management frames, the full payload).
  std::vector<std::uint8_t> bytes;
  /// Bulk payload bytes accounted for wire time but not materialized.
  std::uint64_t extra_payload_bytes{0};
  /// Classification cache (== classify_frame(bytes); tests verify).
  FrameInfo info;
  /// When the sending application released the frame.
  Tick created_at{0};
  /// Sending end-node (provenance for stats; not trusted by the switch).
  NodeId origin;

  /// Wire occupancy: headers + bulk payload + FCS/preamble/IFG, floored at
  /// the Ethernet minimum and capped at one maximal frame.
  [[nodiscard]] std::uint64_t wire_bytes() const;

  /// Builds a frame, classifying (and asserting on unparseable bytes).
  static SimFrame make(std::uint64_t frame_id,
                       std::vector<std::uint8_t> bytes,
                       std::uint64_t extra_payload_bytes, Tick created_at,
                       NodeId origin);
};

}  // namespace rtether::sim
