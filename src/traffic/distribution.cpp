#include "traffic/distribution.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rtether::traffic {

SlotDistribution SlotDistribution::fixed(Slot value) {
  return SlotDistribution(Kind::kFixed, value, value, {});
}

SlotDistribution SlotDistribution::uniform(Slot lo, Slot hi) {
  RTETHER_ASSERT(lo <= hi);
  return SlotDistribution(Kind::kUniform, lo, hi, {});
}

SlotDistribution SlotDistribution::choice(std::vector<Slot> values) {
  RTETHER_ASSERT(!values.empty());
  return SlotDistribution(Kind::kChoice, 0, 0, std::move(values));
}

Slot SlotDistribution::sample(Rng& rng) const {
  switch (kind_) {
    case Kind::kFixed:
      return lo_;
    case Kind::kUniform:
      return rng.uniform(lo_, hi_);
    case Kind::kChoice:
      return rng.pick(values_);
  }
  return lo_;
}

Slot SlotDistribution::min_value() const {
  switch (kind_) {
    case Kind::kFixed:
    case Kind::kUniform:
      return lo_;
    case Kind::kChoice:
      return *std::min_element(values_.begin(), values_.end());
  }
  return lo_;
}

Slot SlotDistribution::max_value() const {
  switch (kind_) {
    case Kind::kFixed:
      return lo_;
    case Kind::kUniform:
      return hi_;
    case Kind::kChoice:
      return *std::max_element(values_.begin(), values_.end());
  }
  return hi_;
}

}  // namespace rtether::traffic
