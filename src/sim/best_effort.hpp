#pragma once

/// @file best_effort.hpp
/// Synthetic non-real-time (TCP-like) traffic. The paper's network carries
/// ordinary TCP/IP alongside RT channels; this generator stands in for that
/// stack (see DESIGN.md §3): it emits valid IPv4 frames with ToS 0 that take
/// the FCFS path through every queue, at Poisson or on-off-burst arrivals.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/random.hpp"
#include "common/types.hpp"
#include "sim/network.hpp"

namespace rtether::sim {

/// Arrival process shape.
enum class BestEffortArrivals : std::uint8_t {
  kPoisson,  ///< exponential inter-arrival times
  kOnOff,    ///< exponential on/off phases; arrivals only while on
};

struct BestEffortProfile {
  /// Mean offered load per source as a fraction of link capacity (0…1+).
  double offered_load{0.2};
  /// Frame payload size range, bytes (uniform).
  std::uint32_t min_payload_bytes{46};
  std::uint32_t max_payload_bytes{1460};
  BestEffortArrivals arrivals{BestEffortArrivals::kPoisson};
  /// Mean on/off phase lengths in slots (kOnOff only).
  double mean_on_slots{50.0};
  double mean_off_slots{200.0};
  /// Fixed destination; nullopt = uniform random other node.
  std::optional<NodeId> destination;
};

/// Attaches a best-effort sender to one node. The source schedules itself
/// on the network's simulator until `stop()` or end of run.
class BestEffortSource {
 public:
  BestEffortSource(SimNetwork& network, NodeId node, BestEffortProfile profile,
                   std::uint64_t seed);

  /// Begins generating (first arrival is one inter-arrival time out).
  void start();

  /// Stops generating after the currently scheduled arrival.
  void stop() { running_ = false; }

  /// Kernel dispatch target (EventType::kBestEffortArrival): the next
  /// arrival fires — emit a frame and self-reschedule.
  void on_arrival();

  [[nodiscard]] std::uint64_t frames_generated() const {
    return frames_generated_;
  }

 private:
  void schedule_next();
  void emit_frame();
  /// Mean inter-arrival in ticks for the configured offered load and mean
  /// frame size (computed once).
  [[nodiscard]] double mean_interarrival_ticks() const;

  SimNetwork& network_;
  NodeId node_;
  BestEffortProfile profile_;
  Rng rng_;
  bool running_{false};
  bool on_phase_{true};
  std::uint64_t frames_generated_{0};
};

/// Convenience: attach one source per node with the same profile
/// (per-node-derived seeds) and start them all.
[[nodiscard]] std::vector<std::unique_ptr<BestEffortSource>>
attach_best_effort_everywhere(SimNetwork& network,
                              const BestEffortProfile& profile,
                              std::uint64_t seed);

}  // namespace rtether::sim
