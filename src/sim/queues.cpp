#include "sim/queues.hpp"

#include <utility>

#include "sim/heap_util.hpp"

namespace rtether::sim {

void EdfQueue::push(Tick deadline_key, FrameIndex frame) {
  heap_push(heap_, Entry{deadline_key, next_sequence_++, frame},
            &EdfQueue::earlier);
}

FrameIndex EdfQueue::pop() {
  if (heap_.empty()) {
    return kNoFrame;
  }
  const FrameIndex frame = heap_.front().frame;
  heap_pop(heap_, &EdfQueue::earlier);
  return frame;
}

bool FcfsQueue::push(FrameIndex frame) {
  if (max_depth_ != 0 && size_ >= max_depth_) {
    ++dropped_;
    return false;
  }
  if (size_ == ring_.size()) {
    grow();
  }
  // Power-of-two capacity: wraparound is a mask, not a division.
  ring_[(head_ + size_) & (ring_.size() - 1)] = frame;
  ++size_;
  return true;
}

FrameIndex FcfsQueue::pop() {
  if (size_ == 0) {
    return kNoFrame;
  }
  const FrameIndex frame = ring_[head_];
  head_ = (head_ + 1) & (ring_.size() - 1);
  --size_;
  return frame;
}

void FcfsQueue::reserve(std::size_t capacity) {
  while (ring_.size() < capacity) {
    grow();
  }
}

void FcfsQueue::grow() {
  const std::size_t old_capacity = ring_.size();
  const std::size_t new_capacity = old_capacity == 0 ? 16 : 2 * old_capacity;
  std::vector<FrameIndex> bigger(new_capacity);
  for (std::size_t i = 0; i < size_; ++i) {
    bigger[i] = ring_[(head_ + i) & (old_capacity - 1)];
  }
  ring_ = std::move(bigger);
  head_ = 0;
}

}  // namespace rtether::sim
