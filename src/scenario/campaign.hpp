#pragma once

/// @file campaign.hpp
/// Parallel fuzzing campaigns: N seeds → N scenarios → N oracle runs across
/// a `common::ThreadPool`, with failures collected, deterministically
/// ordered by seed and shrunk to minimized repro specs. This is the engine
/// behind `bench_scenario_fuzz` (PR perf gate + nightly CI job) and the
/// campaign smoke tests; scenario throughput is a first-class perf metric
/// (BENCH_scenario_fuzz.json).

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "scenario/generator.hpp"
#include "scenario/runner.hpp"
#include "scenario/shrinker.hpp"
#include "scenario/spec.hpp"

namespace rtether::scenario {

struct CampaignConfig {
  /// Scenario i uses seed base_seed + i.
  std::uint64_t base_seed{1};
  std::size_t scenario_count{1000};
  /// Worker threads; 0 = one per hardware thread.
  unsigned threads{0};
  GeneratorConfig generator{};
  /// Injected factories must be thread-safe (the defaults are).
  RunnerOptions runner{};
  /// Failures beyond this many are counted but not kept/shrunk.
  std::size_t max_failures{8};
  /// Wall-clock budget; scenarios not started before it expires are
  /// skipped (0 = unbounded). The nightly CI job runs a 60-second budget.
  double time_budget_seconds{0.0};
  bool shrink_failures{true};
};

struct CampaignFailure {
  std::uint64_t seed{0};
  ScenarioSpec spec;
  ScenarioSpec minimized;
  /// First violation of the original failing run.
  std::string detail;
};

struct CampaignResult {
  std::size_t scenarios_run{0};
  std::size_t failures{0};
  bool time_budget_hit{false};
  /// The `max_failures` failures with the *lowest* seeds, ascending
  /// (deterministic across thread interleavings even when more fail).
  std::vector<CampaignFailure> failing;
  // Aggregates for throughput reporting.
  std::uint64_t ops_total{0};
  std::uint64_t admitted_total{0};
  std::uint64_t frames_delivered_total{0};
  std::uint64_t simulated_slots_total{0};
  /// Per-fault-class injection totals across every scenario (indexed by
  /// sim::FaultKind). A fault-heavy campaign gates on each class being
  /// nonzero — proof the whole fault universe was actually exercised.
  std::array<std::uint64_t, sim::kFaultKindCount> fault_injections_total{};
  /// Calculus-oracle consultations across every scenario.
  std::uint64_t oracle_checks_total{0};
  /// XOR of every scenario's SimDigest fields (order-independent, so it is
  /// identical across thread counts and interleavings). Campaigns run with
  /// the same seeds on two kernel builds must agree on this fingerprint.
  std::uint64_t sim_digest_xor{0};
  /// Campaign wall-clock (generation + oracle runs only).
  double seconds{0.0};
  /// Additional wall-clock spent shrinking failures (0 on green runs).
  double shrink_seconds{0.0};

  [[nodiscard]] double scenarios_per_second() const {
    return seconds > 0.0 ? static_cast<double>(scenarios_run) / seconds : 0.0;
  }
  [[nodiscard]] double simulated_slots_per_second() const {
    return seconds > 0.0 ? static_cast<double>(simulated_slots_total) / seconds
                         : 0.0;
  }
};

[[nodiscard]] CampaignResult run_campaign(const CampaignConfig& config);

}  // namespace rtether::scenario
