#include "common/bytes.hpp"

#include <gtest/gtest.h>

namespace rtether {
namespace {

TEST(ByteWriter, BigEndianLayout) {
  ByteWriter w;
  w.write_u16(0x1234);
  w.write_u32(0xdeadbeef);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 6u);
  EXPECT_EQ(b[0], 0x12);
  EXPECT_EQ(b[1], 0x34);
  EXPECT_EQ(b[2], 0xde);
  EXPECT_EQ(b[3], 0xad);
  EXPECT_EQ(b[4], 0xbe);
  EXPECT_EQ(b[5], 0xef);
}

TEST(ByteWriter, U48Layout) {
  ByteWriter w;
  w.write_u48(0x0102'0304'0506ULL);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(b[i], i + 1);
  }
}

TEST(ByteWriter, Zeros) {
  ByteWriter w;
  w.write_zeros(3);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w.bytes()[0], 0);
  EXPECT_EQ(w.bytes()[2], 0);
}

TEST(ByteRoundTrip, AllWidths) {
  ByteWriter w;
  w.write_u8(0xab);
  w.write_u16(0x1234);
  w.write_u32(0x89abcdef);
  w.write_u48(0xffff'ffff'ffffULL);
  w.write_u64(0x0123'4567'89ab'cdefULL);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_u8(), 0xab);
  EXPECT_EQ(r.read_u16(), 0x1234);
  EXPECT_EQ(r.read_u32(), 0x89abcdefu);
  EXPECT_EQ(r.read_u48(), 0xffff'ffff'ffffULL);
  EXPECT_EQ(r.read_u64(), 0x0123'4567'89ab'cdefULL);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, ShortBufferYieldsNullopt) {
  const std::vector<std::uint8_t> one{0x42};
  ByteReader r(one);
  EXPECT_FALSE(r.read_u16().has_value());
  // Failed read must not consume.
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_EQ(r.read_u8(), 0x42);
  EXPECT_FALSE(r.read_u8().has_value());
}

TEST(ByteReader, ReadBytesAndSkip) {
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  ByteReader r(data);
  EXPECT_TRUE(r.skip(2));
  const auto view = r.read_bytes(2);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ((*view)[0], 3);
  EXPECT_EQ((*view)[1], 4);
  EXPECT_FALSE(r.skip(2));
  EXPECT_TRUE(r.skip(1));
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, PositionTracksConsumption) {
  const std::vector<std::uint8_t> data{1, 2, 3, 4};
  ByteReader r(data);
  EXPECT_EQ(r.position(), 0u);
  (void)r.read_u16();
  EXPECT_EQ(r.position(), 2u);
}

TEST(ByteWriter, WriteBytesAppends) {
  ByteWriter w;
  const std::vector<std::uint8_t> chunk{9, 8, 7};
  w.write_u8(1);
  w.write_bytes(chunk);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[3], 7);
}

TEST(ByteWriter, TakeMovesBuffer) {
  ByteWriter w;
  w.write_u32(5);
  auto taken = std::move(w).take();
  EXPECT_EQ(taken.size(), 4u);
}

}  // namespace
}  // namespace rtether
