#pragma once

/// @file types.hpp
/// Strongly typed identifiers and time units shared across the library.
///
/// The paper expresses every analysis quantity — period P, capacity C,
/// deadline d — as a number of maximum-sized-frame transmission times
/// ("slots"). The simulator runs on a finer integer grid ("ticks") so that
/// sub-slot latencies (propagation, switch processing) are representable.

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace rtether {

/// Analysis time unit: one slot = transmission time of one maximal frame.
using Slot = std::uint64_t;

/// Simulation time unit; `SimConfig::ticks_per_slot` sets the granularity.
using Tick = std::uint64_t;

/// Sentinel for "no deadline / unbounded".
inline constexpr Tick kTickInfinity = std::numeric_limits<Tick>::max();

/// A type-safe integer identifier. `Tag` makes NodeId, ChannelId, ... into
/// distinct, non-convertible types while keeping them trivially copyable.
template <typename Tag, typename Rep>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

 private:
  Rep value_{};
};

struct NodeIdTag {};
struct ChannelIdTag {};
struct RequestIdTag {};

/// End-node identifier (dense, assigned by the network builder).
using NodeId = StrongId<NodeIdTag, std::uint32_t>;

/// Network-unique RT channel identifier. 16 bits on the wire (Fig 18.3).
using ChannelId = StrongId<ChannelIdTag, std::uint16_t>;

/// Source-node-unique connection request identifier. 8 bits on the wire.
using ConnectionRequestId = StrongId<RequestIdTag, std::uint8_t>;

}  // namespace rtether

namespace std {

template <typename Tag, typename Rep>
struct hash<rtether::StrongId<Tag, Rep>> {
  size_t operator()(rtether::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};

}  // namespace std
