#pragma once

/// @file hyperperiod.hpp
/// Hyperperiod of a task set (paper §18.3.2): the lcm of all periods — the
/// time from a synchronous release until the release pattern repeats.

#include <optional>

#include "common/types.hpp"
#include "edf/task_set.hpp"

namespace rtether::edf {

/// lcm of all periods, or nullopt on 64-bit overflow (the feasibility test
/// never requires the hyperperiod — the busy-period bound is tighter — so
/// overflow only degrades diagnostics, not decisions). Empty set → 1.
[[nodiscard]] std::optional<Slot> hyperperiod(const TaskSet& set);

}  // namespace rtether::edf
