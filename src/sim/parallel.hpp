#pragma once

/// @file parallel.hpp
/// Conservative parallel driver for a partitioned fabric simulation
/// (sim/fabric.hpp): fixed barrier rounds of at most `lookahead()` ticks.
/// A `run_until` submits one persistent job per pool worker; the workers
/// own a static partition slice (p ≡ w mod workers) and loop over rounds
/// with a condvar barrier between them, so the per-round synchronization is
/// one mutex/condvar cycle per worker — not a pool fork/join — and a
/// single-worker run degenerates to the sequential loop plus an
/// uncontended lock per round (the bench's ≥0.95× paired-overhead gate
/// rides on exactly this).
///
/// The round schedule is a pure function of (run length, lookahead), so
/// every partition executes a bitwise-identical event sequence for any
/// thread count — including `threads == 0`, which runs the same rounds
/// inline on the caller and doubles as the sequential baseline the
/// parallel digests are pinned against (and the fair perf baseline the
/// bench's paired speedup ratio divides by: same algorithm, minus the
/// pool).

#include <algorithm>
#include <cstdint>

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "sim/fabric.hpp"

namespace rtether::sim {

class ParallelSimulator {
 public:
  /// `threads == 0`: no workers, rounds run inline (sequential mode).
  /// Otherwise the pool is sized `min(threads, partition_count)` — extra
  /// workers beyond one per partition could never be scheduled.
  ParallelSimulator(FabricNetwork& fabric, unsigned threads)
      : fabric_(fabric),
        pool_(threads == 0
                  ? 0
                  : std::min<unsigned>(
                        threads,
                        static_cast<unsigned>(fabric.partition_count()))) {}

  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;

  /// Advances every partition to `until` in barrier rounds. Returns false
  /// when any partition exhausted `max_events_per_partition` (its kernel's
  /// cumulative budget) or a cut-link spill overflowed; the fabric is then
  /// in a failed, non-resumable state.
  [[nodiscard]] bool run_until(
      Tick until,
      std::uint64_t max_events_per_partition = Simulator::kDefaultMaxEvents);

  /// Worker threads actually spawned (0 = inline sequential mode).
  [[nodiscard]] unsigned thread_count() const { return pool_.size(); }

  /// Barrier rounds executed so far.
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }

 private:
  FabricNetwork& fabric_;
  ThreadPool pool_;
  Tick now_{0};
  std::uint64_t rounds_{0};
};

}  // namespace rtether::sim
