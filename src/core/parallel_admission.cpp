#include "core/parallel_admission.hpp"

#include <algorithm>
#include <optional>
#include <thread>
#include <utility>

#include "common/assert.hpp"
#include "core/admission_internal.hpp"

namespace rtether::core {

using admission_internal::key_direction;
using admission_internal::key_node;
using admission_internal::link_key;

namespace {

/// How the pre-pass classified one request.
enum class RequestKind : std::uint8_t {
  kInvalid,  ///< fails ChannelSpec::valid(); rejected at merge
  kUnknown,  ///< source or destination not in the network; rejected at merge
  kSharded,  ///< decided by a shard worker
};

/// One request's verdict as computed by a shard worker. Workers write into
/// disjoint, pre-sized slots — the only cross-thread hand-off is the
/// fork-join of the pool itself.
struct Decision {
  bool accepted{false};
  DeadlinePartition partition{};
  RejectReason reason{RejectReason::kUplinkInfeasible};
  std::string detail;
};

}  // namespace

/// Everything one worker needs, owned exclusively for the batch: the shard's
/// request indices (submission order), its links, a private projection of
/// the network state covering exactly those links, the engine's per-link
/// caches (borrowed — moved out and later moved back), and a placeholder
/// channel ID per request drawn from the allocator's free pool so local
/// trial commits can never collide with a live ID.
struct ParallelAdmissionEngine::Shard {
  std::vector<std::uint32_t> requests;
  std::vector<std::size_t> links;
  std::vector<ChannelId> placeholders;
  std::vector<edf::LinkScanCache> caches;
  /// Constructed by the worker itself (the projection copies are part of
  /// the parallel phase, not the sequential prologue).
  std::optional<NetworkState> local;
  AdmissionStats stats;
};

ParallelAdmissionEngine::ParallelAdmissionEngine(
    std::uint32_t node_count, std::unique_ptr<DeadlinePartitioner> partitioner,
    ParallelAdmissionConfig config)
    : engine_(node_count, std::move(partitioner), config.admission),
      pool_(config.threads != 0
                ? config.threads
                : std::max(1u, std::thread::hardware_concurrency())),
      min_parallel_batch_(config.min_parallel_batch) {}

AdmitOutcome ParallelAdmissionEngine::admit(const ChannelSpec& spec) {
  return engine_.admit(spec);
}

ReleaseOutcome ParallelAdmissionEngine::release(ChannelId id) {
  return engine_.release(id);
}

BatchResult ParallelAdmissionEngine::admit_batch(
    std::span<const ChannelRequest> requests) {
  // `select_path` is the one policy point (shared with AdmissionService):
  // non-checkpoint scans run the reference path, degenerate pools cannot run
  // anything concurrently, and small batches would pay more in shard setup
  // than the analysis costs. All of these fall back to the sequential
  // engine — decisions are identical on every path, only wall clock differs.
  if (select_path(engine_.config_.scan, pool_.size(), requests.size(),
                  min_parallel_batch_) == AdmissionPath::kSequential) {
    last_shard_count_ = requests.empty() ? 0 : 1;
    return engine_.admit_batch(requests);
  }
  return admit_batch_sharded(requests);
}

BatchResult ParallelAdmissionEngine::admit_batch_sharded(
    std::span<const ChannelRequest> requests) {
  const std::uint32_t node_count = engine_.state().node_count();
  const std::size_t key_space = std::size_t{node_count} * 2;

  // Phase 1a — classify and build the link-conflict graph.
  std::vector<RequestKind> kind(requests.size());
  admission_internal::LinkUnionFind components(key_space);
  std::size_t shardable = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const ChannelSpec& spec = requests[i].spec;
    if (!spec.valid()) {
      kind[i] = RequestKind::kInvalid;
    } else if (!engine_.state().node_exists(spec.source) ||
               !engine_.state().node_exists(spec.destination)) {
      kind[i] = RequestKind::kUnknown;
    } else {
      kind[i] = RequestKind::kSharded;
      ++shardable;
      components.unite(link_key(spec.source, LinkDirection::kUplink),
                       link_key(spec.destination, LinkDirection::kDownlink));
    }
  }

  // Channel-ID headroom: the sequential flow rejects with
  // kChannelIdsExhausted exactly when the allocator runs dry mid-stream,
  // which depends on global acceptance order — not reproducible shard-
  // locally. With enough headroom the case cannot arise; without it, the
  // whole batch takes the sequential path.
  if (shardable == 0 ||
      engine_.ids_.live_count() + shardable > ChannelIdAllocator::kCapacity) {
    last_shard_count_ = 1;
    return engine_.admit_batch(requests);
  }

  // Phase 1b — group requests into shards (one per connected component,
  // submission order preserved by the ascending index walk).
  std::vector<std::int32_t> shard_of_root(key_space, -1);
  std::vector<Shard> shards;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (kind[i] != RequestKind::kSharded) {
      continue;
    }
    const ChannelSpec& spec = requests[i].spec;
    const std::uint32_t root =
        components.find(link_key(spec.source, LinkDirection::kUplink));
    if (shard_of_root[root] < 0) {
      shard_of_root[root] = static_cast<std::int32_t>(shards.size());
      shards.emplace_back();
    }
    shards[static_cast<std::size_t>(shard_of_root[root])].requests.push_back(
        static_cast<std::uint32_t>(i));
  }

  if (shards.size() == 1) {
    // One giant component (e.g. uniform all-to-all traffic): sharding buys
    // nothing, skip the projection overhead.
    last_shard_count_ = 1;
    return engine_.admit_batch(requests);
  }

  // Phase 1c — per-shard link membership. `slot_of_key` maps a link key to
  // its index within *its* shard's cache array; keys are partitioned across
  // shards, so one global table suffices (read-only while workers run).
  std::vector<std::int32_t> slot_of_key(key_space, -1);
  for (auto& shard : shards) {
    for (const std::uint32_t i : shard.requests) {
      const ChannelSpec& spec = requests[i].spec;
      for (const std::size_t key :
           {link_key(spec.source, LinkDirection::kUplink),
            link_key(spec.destination, LinkDirection::kDownlink)}) {
        if (slot_of_key[key] < 0) {
          slot_of_key[key] = static_cast<std::int32_t>(shard.links.size());
          shard.links.push_back(key);
        }
      }
    }
  }

  // Phase 1d — placeholder IDs. Trial commits inside a worker install
  // pseudo-tasks under a temporary channel ID; drawing those from the
  // allocator's free pool (allocate-then-release keeps the allocator
  // unchanged) guarantees no collision with live channels or other shards.
  std::vector<ChannelId> free_ids;
  free_ids.reserve(shardable);
  for (std::size_t n = 0; n < shardable; ++n) {
    const auto id = engine_.ids_.allocate();
    RTETHER_ASSERT_MSG(id.has_value(), "headroom guard miscounted");
    free_ids.push_back(*id);
  }
  for (const ChannelId id : free_ids) {
    const bool was_live = engine_.ids_.release(id);
    RTETHER_ASSERT(was_live);
  }
  {
    std::size_t cursor = 0;
    for (auto& shard : shards) {
      shard.placeholders.assign(
          free_ids.begin() + static_cast<std::ptrdiff_t>(cursor),
          free_ids.begin() +
              static_cast<std::ptrdiff_t>(cursor + shard.requests.size()));
      cursor += shard.requests.size();
    }
  }

  // Phase 1e — borrow the engine's caches (cheap vector-swap moves; must
  // stay sequential because the engine owns them until here).
  for (auto& shard : shards) {
    shard.caches.resize(shard.links.size());
    for (std::size_t slot = 0; slot < shard.links.size(); ++slot) {
      const std::size_t key = shard.links[slot];
      shard.caches[slot] =
          std::move(engine_.cache(key_node(key), key_direction(key)));
    }
  }

  // Phase 2 — decide every shard concurrently. Workers touch only their
  // own shard, their disjoint decision slots, and read-only shared inputs
  // (requests, slot_of_key, the engine's — frozen — network state, the
  // stateless partitioner).
  std::vector<Decision> decisions(requests.size());
  const DeadlinePartitioner& partitioner = engine_.partitioner();
  pool_.parallel_for_shards(shards.size(), [&](std::size_t si) {
    Shard& shard = shards[si];

    // Project the network state: wholesale copies of exactly this shard's
    // links (task order and accumulated floating-point utilization
    // preserved), so partitioners and diagnostics observe exactly the
    // sequential numbers. Done here, not in the prologue — the copies are
    // part of the parallel phase.
    shard.local.emplace(engine_.state().node_count());
    for (const std::size_t key : shard.links) {
      const NodeId node = key_node(key);
      const LinkDirection dir = key_direction(key);
      shard.local->adopt_link(node, dir, engine_.state().link(node, dir));
    }

    // Per-link batch pre-pass, same as the sequential engine's
    // prepare_links but scoped (and parallelized) per shard.
    std::vector<std::vector<ChannelSpec>> groups(shard.links.size());
    for (const std::uint32_t i : shard.requests) {
      const ChannelSpec& spec = requests[i].spec;
      groups[static_cast<std::size_t>(
                 slot_of_key[link_key(spec.source, LinkDirection::kUplink)])]
          .push_back(spec);
      groups[static_cast<std::size_t>(
                 slot_of_key[link_key(spec.destination,
                                      LinkDirection::kDownlink)])]
          .push_back(spec);
    }
    for (std::size_t slot = 0; slot < shard.links.size(); ++slot) {
      const std::size_t key = shard.links[slot];
      admission_internal::reserve_link_horizon(
          shard.local->link(key_node(key), key_direction(key)),
          shard.caches[slot], groups[slot]);
    }

    // The DPS-candidate loop, identical to `admission_flow`'s (validation
    // and ID allocation already handled by the pre-pass and merge phases).
    for (std::size_t k = 0; k < shard.requests.size(); ++k) {
      const std::uint32_t i = shard.requests[k];
      const ChannelSpec& spec = requests[i].spec;
      Decision& out = decisions[i];

      auto& uplink_cache = shard.caches[static_cast<std::size_t>(
          slot_of_key[link_key(spec.source, LinkDirection::kUplink)])];
      auto& downlink_cache = shard.caches[static_cast<std::size_t>(
          slot_of_key[link_key(spec.destination,
                               LinkDirection::kDownlink)])];

      const auto candidates = partitioner.candidates(spec, *shard.local);
      RTETHER_ASSERT_MSG(!candidates.empty(), "DPS returned no candidates");
      RejectReason reason = RejectReason::kUplinkInfeasible;
      std::string why;
      for (const auto& partition : candidates) {
        RTETHER_ASSERT_MSG(partition.satisfies(spec),
                           "DPS candidate violates Eq 18.8/18.9");
        if (admission_internal::cached_candidate_test(
                *shard.local, uplink_cache, downlink_cache, shard.stats, spec,
                shard.placeholders[k], partition, reason, why)) {
          out.accepted = true;
          out.partition = partition;
          break;
        }
      }
      if (!out.accepted) {
        out.reason = reason;
        out.detail = std::move(why);
      }
    }
  });

  // Phase 3 — merge in submission order. Real channel IDs are allocated
  // here, smallest-free-first over the global accept sequence — exactly the
  // IDs the sequential controller would have assigned. Rejections for
  // invalid/unknown specs are materialized with the shared detail builders,
  // so their strings cannot drift from the sequential path either.
  BatchResult result;
  result.outcomes.reserve(requests.size());
  AdmissionStats& stats = engine_.stats_;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const ChannelSpec& spec = requests[i].spec;
    ++stats.requested;
    switch (kind[i]) {
      case RequestKind::kInvalid:
        ++stats.rejected;
        result.outcomes.push_back(Unexpected(
            Rejection{RejectReason::kInvalidSpec,
                      admission_internal::invalid_spec_detail(spec)}));
        break;
      case RequestKind::kUnknown:
        ++stats.rejected;
        result.outcomes.push_back(Unexpected(
            Rejection{RejectReason::kUnknownNode, spec.to_string()}));
        break;
      case RequestKind::kSharded: {
        Decision& decision = decisions[i];
        if (decision.accepted) {
          const auto id = engine_.ids_.allocate();
          RTETHER_ASSERT_MSG(id.has_value(),
                             "headroom guard admitted too many channels");
          const RtChannel channel{*id, spec, decision.partition};
          engine_.state_.add_channel(channel);
          ++stats.accepted;
          result.outcomes.push_back(channel);
        } else {
          ++stats.rejected;
          result.outcomes.push_back(Unexpected(
              Rejection{decision.reason, std::move(decision.detail)}));
        }
        break;
      }
    }
  }

  // Return the borrowed caches. They tracked the shard-local task sets,
  // which the merge just replayed (ID-agnostically) into the real state, so
  // shadow and state are in sync again.
  for (auto& shard : shards) {
    for (std::size_t slot = 0; slot < shard.links.size(); ++slot) {
      const std::size_t key = shard.links[slot];
      engine_.cache(key_node(key), key_direction(key)) =
          std::move(shard.caches[slot]);
    }
    stats.feasibility_tests += shard.stats.feasibility_tests;
    stats.demand_evaluations += shard.stats.demand_evaluations;
  }

  last_shard_count_ = shards.size();
  return result;
}

ChurnResult ParallelAdmissionEngine::process(
    std::span<const ChannelOp> ops) {
  ChurnResult result;
  std::vector<ChannelRequest> pending;
  auto flush = [&] {
    if (pending.empty()) {
      return;
    }
    BatchResult batch = admit_batch(pending);
    for (auto& outcome : batch.outcomes) {
      result.admissions.push_back(std::move(outcome));
    }
    pending.clear();
  };
  for (const ChannelOp& op : ops) {
    if (op.kind == ChannelOp::Kind::kAdmit) {
      pending.push_back(ChannelRequest{op.spec});
    } else {
      flush();
      result.releases.push_back(release(op.id));
    }
  }
  flush();
  return result;
}

}  // namespace rtether::core
