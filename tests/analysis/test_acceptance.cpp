#include "analysis/acceptance.hpp"

#include <gtest/gtest.h>

namespace rtether::analysis {
namespace {

traffic::MasterSlaveConfig paper_workload() {
  return traffic::MasterSlaveConfig{};  // 10 masters, 50 slaves, {100,3,40}
}

AcceptanceSweepConfig small_sweep() {
  AcceptanceSweepConfig config;
  config.request_counts = {20, 60, 120, 200};
  config.seeds = 3;
  return config;
}

TEST(Acceptance, CountAcceptedMatchesControllerDirectly) {
  traffic::MasterSlaveWorkload workload(paper_workload(), 42);
  const auto specs = workload.generate(100);
  const auto via_helper = count_accepted("SDPS", 60, specs);

  core::AdmissionController controller(60, core::make_partitioner("SDPS"));
  std::size_t direct = 0;
  for (const auto& spec : specs) {
    if (controller.request(spec)) ++direct;
  }
  EXPECT_EQ(via_helper, direct);
}

TEST(Acceptance, LowDemandAcceptsEverything) {
  auto config = small_sweep();
  config.request_counts = {10};
  const auto curve =
      run_master_slave_sweep("SDPS", paper_workload(), config);
  ASSERT_EQ(curve.points.size(), 1u);
  // 10 random requests over 10 masters cannot exceed any uplink's limit of
  // 6 except in freak collisions; min over seeds should still be high.
  EXPECT_GE(curve.points[0].accepted_min, 8.0);
}

TEST(Acceptance, SdpsPlateausAtSixtyOnPaperWorkload) {
  // The analytic plateau: 10 masters × ⌊20/3⌋ = 60 channels.
  auto config = small_sweep();
  config.request_counts = {200};
  config.seeds = 3;
  const auto curve =
      run_master_slave_sweep("SDPS", paper_workload(), config);
  EXPECT_EQ(curve.points[0].accepted_min, 60.0);
  EXPECT_EQ(curve.points[0].accepted_max, 60.0);
}

TEST(Acceptance, AdpsExceedsSdpsAtSaturation) {
  auto config = small_sweep();
  config.request_counts = {200};
  const auto sdps = run_master_slave_sweep("SDPS", paper_workload(), config);
  const auto adps = run_master_slave_sweep("ADPS", paper_workload(), config);
  // Paper Fig 18.5: ADPS ≈ 110 vs SDPS = 60 at 200 requested.
  EXPECT_GT(adps.points[0].accepted_mean,
            1.5 * sdps.points[0].accepted_mean);
}

TEST(Acceptance, CurvesAreMonotoneInRequested) {
  const auto curve = run_master_slave_sweep("ADPS", paper_workload(),
                                            small_sweep());
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_GE(curve.points[i].accepted_mean,
              curve.points[i - 1].accepted_mean);
  }
}

TEST(Acceptance, MinNeverExceedsMeanNorMax) {
  const auto curve = run_master_slave_sweep("SDPS", paper_workload(),
                                            small_sweep());
  for (const auto& p : curve.points) {
    EXPECT_LE(p.accepted_min, p.accepted_mean);
    EXPECT_LE(p.accepted_mean, p.accepted_max);
    EXPECT_LE(p.accepted_max, static_cast<double>(p.requested));
  }
}

TEST(Acceptance, SchemeNameRecorded) {
  const auto curve = run_master_slave_sweep("UDPS", paper_workload(),
                                            small_sweep());
  EXPECT_EQ(curve.scheme, "UDPS");
}

TEST(Acceptance, GenericStreamAdapter) {
  // A degenerate stream: every request identical 0→1; SDPS accepts 6.
  AcceptanceSweepConfig config;
  config.request_counts = {10};
  config.seeds = 1;
  const auto curve = run_acceptance_sweep(
      "SDPS", 2,
      [](std::uint64_t, std::size_t count) {
        return std::vector<core::ChannelSpec>(
            count, core::ChannelSpec{NodeId{0}, NodeId{1}, 100, 3, 40});
      },
      config);
  EXPECT_EQ(curve.points[0].accepted_mean, 6.0);
}

}  // namespace
}  // namespace rtether::analysis
