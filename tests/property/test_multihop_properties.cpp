// Property tests for the multi-switch generalization: the k-way partition
// invariants (generalized Eqs 18.8/18.9) and admission-state consistency
// over random fabrics and request/release interleavings.

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "core/multihop.hpp"
#include "edf/feasibility.hpp"
#include "scenario/generator.hpp"

namespace rtether::core {
namespace {

/// Random connected fabric: a switch line plus random chords, nodes spread
/// round-robin.
Topology random_fabric(Rng& rng) {
  const auto switches = static_cast<std::uint32_t>(2 + rng.index(4));
  const std::uint32_t nodes = switches * 3;
  Topology topology(nodes, switches);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    topology.attach_node(NodeId{n}, SwitchId{n % switches});
  }
  for (std::uint32_t s = 0; s + 1 < switches; ++s) {
    topology.connect_switches(SwitchId{s}, SwitchId{s + 1});
  }
  // Random extra trunks create alternative routes.
  for (std::uint32_t extra = 0; extra < switches / 2; ++extra) {
    const auto a = static_cast<std::uint32_t>(rng.index(switches));
    const auto b = static_cast<std::uint32_t>(rng.index(switches));
    if (a != b) {
      topology.connect_switches(SwitchId{a}, SwitchId{b});
    }
  }
  return topology;
}

class MultihopProperties : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, MultihopProperties,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST_P(MultihopProperties, SplitsAlwaysSatisfyGeneralizedEquations) {
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    PathNetworkState state(random_fabric(rng));
    const std::uint32_t nodes = state.topology().node_count();
    for (const char* scheme : {"SDPS", "ADPS"}) {
      const auto partitioner = make_path_partitioner(scheme);
      for (int i = 0; i < 20; ++i) {
        const auto src = static_cast<std::uint32_t>(rng.index(nodes));
        const auto dst = static_cast<std::uint32_t>(rng.index(nodes));
        const auto path =
            state.topology().route(NodeId{src}, NodeId{dst});
        ASSERT_TRUE(path.has_value());  // fabric is connected
        const Slot capacity = 1 + rng.index(4);
        const Slot deadline =
            capacity * path->size() + rng.index(100);
        const ChannelSpec spec{NodeId{src}, NodeId{dst}, 200, capacity,
                               deadline};
        const auto budgets = partitioner->split(spec, *path, state);
        ASSERT_EQ(budgets.size(), path->size());
        Slot sum = 0;
        for (const Slot b : budgets) {
          EXPECT_GE(b, capacity) << scheme;
          sum += b;
        }
        EXPECT_EQ(sum, deadline) << scheme;
      }
    }
  }
}

TEST_P(MultihopProperties, AdmissionStateConsistentUnderChurn) {
  Rng rng(GetParam() ^ 0xfeed);
  PathAdmissionController controller(random_fabric(rng),
                                     make_path_partitioner("ADPS"));
  const std::uint32_t nodes = controller.state().topology().node_count();
  std::vector<ChannelId> live;
  for (int i = 0; i < 120; ++i) {
    if (!live.empty() && rng.bernoulli(0.35)) {
      const std::size_t victim = rng.index(live.size());
      EXPECT_TRUE(controller.release(live[victim]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      const auto src = static_cast<std::uint32_t>(rng.index(nodes));
      const auto dst = static_cast<std::uint32_t>(rng.index(nodes));
      const Slot capacity = 1 + rng.index(3);
      const ChannelSpec spec{NodeId{src}, NodeId{dst}, 150, capacity,
                             6 * capacity + rng.index(60)};
      if (const auto result = controller.request(spec)) {
        live.push_back(result->id);
        // Every hop of the committed path must be individually feasible.
        for (const auto& link : result->path) {
          EXPECT_TRUE(edf::is_feasible(controller.state().link(link)));
        }
      }
    }
    EXPECT_EQ(controller.state().channel_count(), live.size());
  }
  for (const auto id : live) {
    EXPECT_TRUE(controller.release(id));
  }
  EXPECT_EQ(controller.state().channel_count(), 0u);
}

TEST_P(MultihopProperties, GeneratedScenariosSatisfyPartitionInvariants) {
  // The k-hop invariants of generalized Eqs 18.8/18.9 — Σd_j = d_i, every
  // d_j ≥ C_i — over fabrics and workloads drawn from the scenario fuzzer
  // (forced multi-switch), for both path partitioners, on the evolving
  // admission state rather than an empty one.
  scenario::GeneratorConfig config;
  config.multiswitch_probability = 1.0;
  for (int round = 0; round < 4; ++round) {
    const auto spec = scenario::generate_scenario(
        config, GetParam() * 7919 + static_cast<std::uint64_t>(round));
    ASSERT_NE(spec.topology.kind, scenario::TopologyKind::kStar);
    const Topology topology = spec.topology.build();
    for (const char* scheme : {"SDPS", "ADPS"}) {
      PathAdmissionController controller(spec.topology.build(),
                                         make_path_partitioner(scheme));
      const auto partitioner = make_path_partitioner(scheme);
      for (const auto& op : spec.ops) {
        if (op.kind != scenario::ScenarioOp::Kind::kAdmit) continue;
        const auto& request = op.spec;
        if (request.capacity == 0 || request.capacity > request.period ||
            !topology.attachment(request.source) ||
            !topology.attachment(request.destination)) {
          continue;
        }
        const auto path =
            topology.route(request.source, request.destination);
        ASSERT_TRUE(path.has_value());
        const std::size_t hops = path->size();
        if (request.deadline < request.capacity * hops) {
          // d_i ≥ k·C_i is a hard admission precondition.
          const auto rejected = controller.request(request);
          ASSERT_FALSE(rejected.has_value());
          EXPECT_EQ(rejected.error().reason, RejectReason::kInvalidSpec);
          continue;
        }
        const auto budgets =
            partitioner->split(request, *path, controller.state());
        ASSERT_EQ(budgets.size(), hops) << scheme;
        Slot sum = 0;
        for (const Slot budget : budgets) {
          EXPECT_GE(budget, request.capacity) << scheme;  // Eq 18.9
          sum += budget;
        }
        EXPECT_EQ(sum, request.deadline) << scheme;  // Eq 18.8
        // Evolve the state so later splits see realistic link loads.
        if (const auto admitted = controller.request(request)) {
          EXPECT_TRUE(admitted->partition_valid());
          EXPECT_GE(admitted->spec.deadline,
                    admitted->spec.capacity * admitted->path.size());
        }
      }
    }
  }
}

TEST_P(MultihopProperties, SingleSwitchFabricEquivalentToClassic) {
  // Randomized cross-validation: on a single-switch topology, path
  // admission with SDPS must match the two-link controller decision for
  // decision in every step of a random request stream.
  Rng rng(GetParam() ^ 0xc0de);
  PathAdmissionController multi(Topology::single_switch(8),
                                make_path_partitioner("SDPS"));
  AdmissionController classic(8, std::make_unique<SymmetricPartitioner>());
  for (int i = 0; i < 80; ++i) {
    const auto src = static_cast<std::uint32_t>(rng.index(8));
    auto dst = static_cast<std::uint32_t>(rng.index(7));
    if (dst >= src) ++dst;
    const Slot capacity = 1 + rng.index(3);
    // Even deadlines: the k-way apportionment and the classic floor-split
    // agree exactly there (odd deadlines differ by rounding convention).
    const Slot deadline = 2 * (capacity + rng.index(30));
    const ChannelSpec spec{NodeId{src}, NodeId{dst}, 100, capacity,
                           deadline};
    EXPECT_EQ(multi.request(spec).has_value(),
              classic.request(spec).has_value())
        << "diverged at step " << i;
  }
}

}  // namespace
}  // namespace rtether::core
