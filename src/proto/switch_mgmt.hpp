#pragma once

/// @file switch_mgmt.hpp
/// The RT channel management software in the switch (Fig 18.2, step 2): it
/// receives RequestFrames, runs admission control (feasibility on the source
/// uplink and destination downlink under the configured DPS), forwards
/// admitted requests to the destination, relays the destination's verdict to
/// the source, and rolls the channel back if the destination declines.

#include <cstdint>
#include <map>
#include <memory>

#include "common/types.hpp"
#include "core/admission.hpp"
#include "core/admission_backend.hpp"
#include "net/mgmt_frames.hpp"
#include "sim/network.hpp"

namespace rtether::proto {

/// Counters for the management plane.
struct SwitchMgmtStats {
  std::uint64_t requests_received{0};
  std::uint64_t requests_admitted{0};
  std::uint64_t requests_rejected_infeasible{0};
  std::uint64_t requests_rejected_by_destination{0};
  std::uint64_t duplicate_requests_ignored{0};
  std::uint64_t teardowns{0};
  /// Teardowns for channels already gone (re-delivered frames); re-acked
  /// so a lost ack cannot wedge the initiator, but otherwise no-ops.
  std::uint64_t duplicate_teardowns_ignored{0};
  /// Teardowns from a node that is not the channel's source (corrupted ID,
  /// or a late duplicate whose ID was recycled to another pair): dropped.
  std::uint64_t stray_teardowns_ignored{0};
};

class SwitchMgmt {
 public:
  /// Installs itself as the switch's management handler, running admission
  /// on the reference controller backend.
  SwitchMgmt(sim::SimNetwork& network,
             std::unique_ptr<core::DeadlinePartitioner> partitioner,
             core::AdmissionConfig config = {});

  /// Same, with the admission implementation chosen by the caller — any
  /// `AdmissionBackend` kind, including the time-triggered "tt" scheme.
  SwitchMgmt(sim::SimNetwork& network,
             std::unique_ptr<core::AdmissionBackend> backend);

  SwitchMgmt(const SwitchMgmt&) = delete;
  SwitchMgmt& operator=(const SwitchMgmt&) = delete;

  /// The admission implementation behind the management plane (state,
  /// stats, partitioner — and `gate_schedule()` on the "tt" kind).
  [[nodiscard]] core::AdmissionBackend& admission() { return *backend_; }
  [[nodiscard]] const SwitchMgmtStats& stats() const { return stats_; }

  /// Simulates a switch reboot (fault injection): the volatile channel
  /// table, pending approvals, request dedup state and the learned MAC
  /// forwarding table are all lost; the admission scheme and config
  /// survive in firmware. Nodes must re-register their channels — the
  /// scenario runner drives that re-establishment and checks it is
  /// bit-identical to admitting on a fresh switch.
  void reboot() {
    awaiting_destination_.clear();
    seen_requests_.clear();
    backend_->reset();
    network_.ethernet_switch().flush_forwarding();
  }

 private:
  void on_management(const sim::SimFrame& frame, NodeId ingress, Tick now);
  void handle_request(const net::RequestFrame& request, NodeId ingress);
  void handle_response(const net::ResponseFrame& response);
  void handle_teardown(const net::TeardownFrame& teardown, NodeId ingress);

  /// Erases the (source, request-ID) dedup entries that map to `channel` —
  /// called when the channel leaves the admission state (teardown or
  /// destination decline) so a recycled 8-bit request ID is treated as the
  /// new request it is, and the dedup table cannot grow without bound.
  void prune_seen_requests(ChannelId channel);

  /// Sends a management payload out of the port toward `to`, sourced from
  /// the switch's own MAC (Fig 18.4: "Source MAC addr. = switch addr.").
  void send_to_node(NodeId to, std::vector<std::uint8_t> payload);

  struct PendingApproval {
    NodeId source;
    ConnectionRequestId request;
  };

  sim::SimNetwork& network_;
  std::unique_ptr<core::AdmissionBackend> backend_;
  /// Channels admitted but awaiting the destination's verdict.
  std::map<ChannelId, PendingApproval> awaiting_destination_;
  /// Dedup: (source node, request id) → assigned channel, for retransmits.
  std::map<std::pair<std::uint32_t, std::uint8_t>, ChannelId> seen_requests_;
  SwitchMgmtStats stats_;
};

}  // namespace rtether::proto
