#include "sim/best_effort.hpp"

#include <gtest/gtest.h>

namespace rtether::sim {
namespace {

SimConfig test_config() {
  return SimConfig{.ticks_per_slot = 100,
                   .propagation_ticks = 1,
                   .switch_processing_ticks = 1};
}

TEST(BestEffortSource, GeneratesTraffic) {
  SimNetwork net(test_config(), 4);
  net.prime_forwarding();
  BestEffortProfile profile;
  profile.offered_load = 0.5;
  BestEffortSource source(net, NodeId{0}, profile, 42);
  source.start();
  EXPECT_TRUE(net.simulator().run_until(net.config().slots_to_ticks(500)));
  source.stop();
  EXPECT_TRUE(net.simulator().run_all());
  EXPECT_GT(source.frames_generated(), 50u);
  EXPECT_EQ(net.stats().best_effort_sent(), source.frames_generated());
  EXPECT_GT(net.stats().best_effort_delivered(), 0u);
}

TEST(BestEffortSource, ApproximatesOfferedLoad) {
  SimNetwork net(test_config(), 2);
  net.prime_forwarding();
  BestEffortProfile profile;
  profile.offered_load = 0.4;
  profile.destination = NodeId{1};
  BestEffortSource source(net, NodeId{0}, profile, 7);
  source.start();
  const Slot run_slots = 5'000;
  EXPECT_TRUE(net.simulator().run_until(net.config().slots_to_ticks(run_slots)));
  source.stop();
  // Uplink utilization should approximate the offered load (exponential
  // arrivals → generous tolerance).
  EXPECT_NEAR(net.uplink_utilization(NodeId{0}), 0.4, 0.08);
}

TEST(BestEffortSource, FixedDestinationHonored) {
  SimNetwork net(test_config(), 4);
  net.prime_forwarding();
  int received_at_2 = 0;
  int received_elsewhere = 0;
  for (std::uint32_t n = 1; n < 4; ++n) {
    net.node(NodeId{n}).set_receiver([&, n](const SimFrame&, Tick) {
      if (n == 2) {
        ++received_at_2;
      } else {
        ++received_elsewhere;
      }
    });
  }
  BestEffortProfile profile;
  profile.offered_load = 0.5;
  profile.destination = NodeId{2};
  BestEffortSource source(net, NodeId{0}, profile, 9);
  source.start();
  EXPECT_TRUE(net.simulator().run_until(net.config().slots_to_ticks(200)));
  source.stop();
  EXPECT_TRUE(net.simulator().run_all());
  EXPECT_GT(received_at_2, 0);
  EXPECT_EQ(received_elsewhere, 0);
}

TEST(BestEffortSource, RandomDestinationNeverSelf) {
  SimNetwork net(test_config(), 3);
  net.prime_forwarding();
  int self_deliveries = 0;
  net.node(NodeId{0}).set_receiver(
      [&](const SimFrame&, Tick) { ++self_deliveries; });
  BestEffortProfile profile;
  profile.offered_load = 0.6;
  BestEffortSource source(net, NodeId{0}, profile, 11);
  source.start();
  EXPECT_TRUE(net.simulator().run_until(net.config().slots_to_ticks(300)));
  source.stop();
  EXPECT_TRUE(net.simulator().run_all());
  EXPECT_EQ(self_deliveries, 0);
  EXPECT_GT(source.frames_generated(), 0u);
}

TEST(BestEffortSource, OnOffBurstsStillDeliver) {
  SimNetwork net(test_config(), 3);
  net.prime_forwarding();
  BestEffortProfile profile;
  profile.offered_load = 0.5;
  profile.arrivals = BestEffortArrivals::kOnOff;
  profile.mean_on_slots = 20.0;
  profile.mean_off_slots = 80.0;
  BestEffortSource source(net, NodeId{0}, profile, 13);
  source.start();
  EXPECT_TRUE(net.simulator().run_until(net.config().slots_to_ticks(2'000)));
  source.stop();
  EXPECT_TRUE(net.simulator().run_all());
  EXPECT_GT(source.frames_generated(), 0u);
  // Off phases must depress the average throughput well below Poisson.
  EXPECT_LT(net.uplink_utilization(NodeId{0}), 0.4);
}

TEST(BestEffortEverywhere, AttachesPerNode) {
  SimNetwork net(test_config(), 5);
  net.prime_forwarding();
  BestEffortProfile profile;
  profile.offered_load = 0.3;
  auto sources = attach_best_effort_everywhere(net, profile, 99);
  EXPECT_EQ(sources.size(), 5u);
  EXPECT_TRUE(net.simulator().run_until(net.config().slots_to_ticks(200)));
  for (auto& s : sources) s->stop();
  EXPECT_TRUE(net.simulator().run_all());
  for (const auto& s : sources) {
    EXPECT_GT(s->frames_generated(), 0u);
  }
}

TEST(BestEffortSource, DeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    SimNetwork net(test_config(), 3);
    net.prime_forwarding();
    BestEffortProfile profile;
    profile.offered_load = 0.4;
    BestEffortSource source(net, NodeId{0}, profile, seed);
    source.start();
    EXPECT_TRUE(net.simulator().run_until(net.config().slots_to_ticks(500)));
    source.stop();
    return source.frames_generated();
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace rtether::sim
