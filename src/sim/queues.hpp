#pragma once

/// @file queues.hpp
/// The two output queues of Fig 18.2: a deadline-sorted queue for RT frames
/// (EDF) and a first-come-first-serve queue for everything else. One pair
/// exists per transmitter — in every end-node for its uplink and in the
/// switch for every output port.
///
/// Both queues hold `FrameIndex` handles into the kernel's frame arena, not
/// frames by value: an entry is a small POD, a dequeue is a single move-out
/// `pop()` (no peek-then-pop double heap walk, no `const_cast` copy-out),
/// and the backing storage only ever grows — the steady-state event loop
/// never touches the allocator.

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/frame.hpp"

namespace rtether::sim {

/// Deadline-sorted (EDF) frame queue. The key is the scheduling deadline in
/// ticks — `release + d_iu` at the source node, the absolute end-to-end
/// deadline decoded from the IP header at the switch. Ties break FIFO by
/// enqueue order, making the schedule deterministic.
class EdfQueue {
 public:
  void push(Tick deadline_key, FrameIndex frame);

  /// Removes and returns the earliest-deadline frame in one heap walk;
  /// `kNoFrame` when empty.
  [[nodiscard]] FrameIndex pop();

  /// Pre-sizes the heap storage (allocation-free steady state).
  void reserve(std::size_t entries) { heap_.reserve(entries); }

  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }

 private:
  struct Entry {
    Tick deadline;
    std::uint64_t sequence;
    FrameIndex frame;
  };

  [[nodiscard]] static bool earlier(const Entry& a, const Entry& b) {
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    return a.sequence < b.sequence;
  }

  /// Min-heap on (deadline, sequence); never shrinks.
  std::vector<Entry> heap_;
  std::uint64_t next_sequence_{0};
};

/// First-come-first-serve queue for non-real-time frames, with an optional
/// depth limit (a real switch has finite buffers; overflow drops the tail).
/// Ring buffer: a `std::deque` would allocate and free blocks as the head
/// chases the tail through memory, which the zero-allocation steady state
/// forbids.
class FcfsQueue {
 public:
  /// `max_depth` 0 means unbounded.
  explicit FcfsQueue(std::size_t max_depth = 0) : max_depth_(max_depth) {}

  /// Enqueues; false (and a counted drop) when the queue is full. The
  /// caller keeps ownership of a dropped frame.
  bool push(FrameIndex frame);

  /// Removes and returns the oldest frame; `kNoFrame` when empty.
  [[nodiscard]] FrameIndex pop();

  /// The oldest frame without removing it; `kNoFrame` when empty. Gated
  /// transmitters must size a frame against the remaining window before
  /// committing to the dequeue.
  [[nodiscard]] FrameIndex peek() const {
    return size_ == 0 ? kNoFrame : ring_[head_];
  }

  /// Pre-sizes the ring to at least `capacity` slots (rounded up to a
  /// power of two; allocation-free steady state).
  void reserve(std::size_t capacity);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  void grow();

  /// Capacity is always zero or a power of two (wraparound by mask).
  std::vector<FrameIndex> ring_;
  std::size_t head_{0};  // index of the oldest element
  std::size_t size_{0};
  std::size_t max_depth_;
  std::uint64_t dropped_{0};
};

}  // namespace rtether::sim
