/// Sim-kernel throughput gate: typed allocation-free event kernel vs the
/// frozen seed `std::function` kernel (legacy_sim_kernel.hpp).
///
/// Both kernels simulate the *identical* saturated 64-node workload — 3
/// periodic RT channels per node (periods 4/8/16 slots, synchronous worst-
/// case phase) plus bursty on-off best-effort cross-traffic from every node
/// against bounded FCFS queues — and must produce identical event counts,
/// delivery counts, miss counts and drop counts (asserted; a divergence
/// means the kernel rewrite changed semantics, which the conformance corpus
/// pins in more detail). The gate then demands:
///
///   1. ≥3× simulated-slot throughput over the seed kernel, and
///   2. zero heap allocations across the measured steady-state phase of
///      the new kernel (counted by a global operator-new hook) — the
///      event heap, frame arena, queues and stat maps must all have
///      reached their high-water marks during warm-up.
///
/// Writes BENCH_sim.json for the perf trajectory (scripts/
/// bench_trajectory.py merges it with the admission/churn/fuzz benches).
///
/// Usage: bench_sim_kernel [measure_slots] [json] [--skip-gate]
///
/// Diagnostics: RTETHER_TRACE_ALLOCS=1 prints a backtrace for every heap
/// allocation inside the measured window (to pinpoint a zero-alloc gate
/// failure); RTETHER_BENCH_NEW_ONLY=1 skips the seed baseline so a
/// profiler sees only the production kernel.

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/json_writer.hpp"
#include "common/units.hpp"
#include "net/deadline_codec.hpp"
#include "net/ethernet.hpp"
#include "net/ipv4.hpp"
#include "sim/addressing.hpp"
#include "sim/best_effort.hpp"
#include "sim/network.hpp"

#include "legacy_sim_kernel.hpp"

// ---------------------------------------------------------------------------
// Allocation-counting hook: every heap allocation in the process increments
// one counter. The zero-allocation assertion snapshots it around the new
// kernel's measured phase.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
std::atomic<bool> g_trace_allocations{false};
}  // namespace

#include <execinfo.h>

// GCC pairs the inlined replacement operator new (malloc-backed) with
// library-emitted sized deletes and flags a false mismatch under -O2.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (g_trace_allocations.load(std::memory_order_relaxed)) {
    void* frames[16];
    const int n = backtrace(frames, 16);
    backtrace_symbols_fd(frames, n, 2);
    std::fprintf(stderr, "--- alloc of %zu bytes ---\n", size);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (g_trace_allocations.load(std::memory_order_relaxed)) {
    void* frames[16];
    const int n = backtrace(frames, 16);
    backtrace_symbols_fd(frames, n, 2);
    std::fprintf(stderr, "--- aligned alloc of %zu bytes ---\n", size);
  }
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#pragma GCC diagnostic pop

namespace rtether {
namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------------
// Workload: saturated 64-node mixed RT + bursty best-effort.
// ---------------------------------------------------------------------------

struct WorkloadConfig {
  std::uint32_t nodes{64};
  /// Per-node channel periods (slots); deadline == period, capacity 1.
  /// Utilization per uplink: 1/4 + 1/8 + 1/16 = 0.4375.
  std::vector<Slot> periods{4, 8, 16};
  /// Destination strides per channel (mixes the switch ports).
  std::vector<std::uint32_t> strides{1, 3, 7};
  /// Bursty (on-off) best-effort offered load per node, saturating the
  /// wire together with the RT set (≈0.94 mean, >1 in bursts).
  double best_effort_load{0.5};
  /// Bounded FCFS queues (a real switch has finite buffers) — keeps the
  /// saturated backlog, and with it the frame arena, bounded.
  std::size_t best_effort_depth{128};
  std::uint64_t seed{42};
  Slot warmup_slots{1024};
  Slot measure_slots{6144};
};

/// Serializes the §18.2.2 RT data frame (Ethernet + IPv4 deadline tag +
/// UDP, payload padded to a maximal frame) into `writer`; returns the pad.
std::uint64_t serialize_rt_frame(ByteWriter& writer, NodeId source,
                                 NodeId destination, ChannelId channel,
                                 Tick absolute_deadline) {
  net::Ipv4Header ip;
  ip.protocol = net::IpProtocol::kUdp;
  net::encode_rt_tag({absolute_deadline, channel}, ip);

  net::EthernetHeader ethernet;
  ethernet.source = sim::node_mac(source);
  ethernet.destination = sim::node_mac(destination);
  ethernet.ether_type = net::EtherType::kIpv4;

  net::UdpHeader udp;
  udp.source_port = 5004;
  udp.destination_port = 5004;

  ethernet.serialize(writer);
  const std::size_t header_bytes = net::EthernetHeader::kWireSize +
                                   net::Ipv4Header::kWireSize +
                                   net::UdpHeader::kWireSize;
  const std::uint64_t pad = kMaxFrameWireBytes - (header_bytes + 4 + 8 + 12);
  ip.total_length = static_cast<std::uint16_t>(net::Ipv4Header::kWireSize +
                                               net::UdpHeader::kWireSize +
                                               pad);
  ip.serialize(writer);
  udp.length = static_cast<std::uint16_t>(net::UdpHeader::kWireSize + pad);
  udp.serialize(writer);
  return pad;
}

/// Periodic RT channel driver on the new kernel: a self-rescheduling
/// function-pointer timer that serializes each release straight into the
/// frame arena — allocation-free in steady state, like proto's senders.
struct NewRtDriver {
  sim::SimNetwork* network{nullptr};
  NodeId source;
  NodeId destination;
  ChannelId channel;
  Tick period_ticks{0};
  Tick deadline_ticks{0};

  void start() {
    network->simulator().schedule_timer(0, &NewRtDriver::fire, this);
  }

  static void fire(void* context, std::uint64_t /*arg*/, Tick /*now*/) {
    auto* self = static_cast<NewRtDriver*>(context);
    self->release();
    self->network->simulator().schedule_timer(self->period_ticks,
                                              &NewRtDriver::fire, self);
  }

  void release() {
    const Tick released = network->now();
    sim::FrameArena& arena = network->arena();
    const sim::FrameIndex index = arena.acquire();
    sim::SimFrame& frame = arena.get(index);
    ByteWriter writer(std::move(frame.bytes));
    const std::uint64_t pad = serialize_rt_frame(
        writer, source, destination, channel, released + deadline_ticks);
    frame.bytes = std::move(writer).take();
    frame.finalize(network->next_frame_id(), pad, released, source);
    network->stats().record_rt_sent(channel);
    network->node(source).send_rt(released + deadline_ticks, index);
  }
};

/// The same driver against the seed kernel: closure timers and by-value
/// frames, exactly as the seed proto layer produced them.
struct LegacyRtDriver {
  sim::legacy::LegacyStarNetwork* network{nullptr};
  NodeId source;
  NodeId destination;
  ChannelId channel;
  Tick period_ticks{0};
  Tick deadline_ticks{0};

  void start() {
    network->simulator().schedule_in(0, [this] { fire(); });
  }

  void fire() {
    release();
    network->simulator().schedule_in(period_ticks, [this] { fire(); });
  }

  void release() {
    const Tick released = network->now();
    const Tick absolute_deadline = released + deadline_ticks;

    net::Ipv4Header ip;
    ip.protocol = net::IpProtocol::kUdp;
    net::encode_rt_tag({absolute_deadline, channel}, ip);
    net::EthernetHeader ethernet;
    ethernet.source = sim::node_mac(source);
    ethernet.destination = sim::node_mac(destination);
    ethernet.ether_type = net::EtherType::kIpv4;
    net::UdpHeader udp;
    udp.source_port = 5004;
    udp.destination_port = 5004;

    ByteWriter writer(net::EthernetHeader::kWireSize +
                      net::Ipv4Header::kWireSize + net::UdpHeader::kWireSize);
    ethernet.serialize(writer);
    const std::size_t header_bytes = net::EthernetHeader::kWireSize +
                                     net::Ipv4Header::kWireSize +
                                     net::UdpHeader::kWireSize;
    const std::uint64_t pad =
        kMaxFrameWireBytes - (header_bytes + 4 + 8 + 12);
    ip.total_length = static_cast<std::uint16_t>(
        net::Ipv4Header::kWireSize + net::UdpHeader::kWireSize + pad);
    sim::legacy::legacy_serialize_ipv4(ip, writer);
    udp.length = static_cast<std::uint16_t>(net::UdpHeader::kWireSize + pad);
    udp.serialize(writer);

    sim::SimFrame frame =
        sim::SimFrame::make(network->next_frame_id(), std::move(writer).take(),
                            pad, released, source);
    network->stats().record_rt_sent(channel);
    network->send_rt(source, absolute_deadline, std::move(frame));
  }
};

/// Replica of sim::BestEffortSource against the seed kernel — identical
/// RNG consumption order, so both kernels see the same arrival process.
class LegacyBestEffortSource {
 public:
  LegacyBestEffortSource(sim::legacy::LegacyStarNetwork& network, NodeId node,
                         sim::BestEffortProfile profile, std::uint64_t seed)
      : network_(network),
        node_(node),
        profile_(profile),
        rng_(seed ^ (0x9e37'79b9'7f4a'7c15ULL * (node.value() + 1))) {}

  void start() {
    running_ = true;
    schedule_next();
  }

 private:
  [[nodiscard]] double mean_interarrival_ticks() const {
    const double mean_payload =
        (static_cast<double>(profile_.min_payload_bytes) +
         static_cast<double>(profile_.max_payload_bytes)) /
        2.0;
    const double mean_wire = mean_payload + net::EthernetHeader::kWireSize +
                             net::Ipv4Header::kWireSize + 4 + 8 + 12;
    const double mean_tx_ticks =
        mean_wire * static_cast<double>(network_.config().ticks_per_slot) /
        static_cast<double>(kMaxFrameWireBytes);
    return mean_tx_ticks / profile_.offered_load;
  }

  void schedule_next() {
    if (!running_) return;
    double gap_ticks = rng_.exponential(mean_interarrival_ticks());
    if (profile_.arrivals == sim::BestEffortArrivals::kOnOff && !on_phase_) {
      const double off_ticks = rng_.exponential(
          profile_.mean_off_slots *
          static_cast<double>(network_.config().ticks_per_slot));
      gap_ticks += off_ticks;
      on_phase_ = true;
    }
    network_.simulator().schedule_in(static_cast<Tick>(gap_ticks) + 1,
                                     [this] { on_arrival(); });
  }

  void on_arrival() {
    if (!running_) return;
    emit_frame();
    if (profile_.arrivals == sim::BestEffortArrivals::kOnOff && on_phase_) {
      const double arrivals_per_on =
          profile_.mean_on_slots *
          static_cast<double>(network_.config().ticks_per_slot) /
          mean_interarrival_ticks();
      if (arrivals_per_on < 1.0 || rng_.bernoulli(1.0 / arrivals_per_on)) {
        on_phase_ = false;
      }
    }
    schedule_next();
  }

  void emit_frame() {
    NodeId destination = profile_.destination.value_or(node_);
    if (!profile_.destination) {
      const std::uint32_t count = network_.node_count();
      if (count <= 1) return;
      auto pick = static_cast<std::uint32_t>(rng_.index(count - 1));
      if (pick >= node_.value()) ++pick;
      destination = NodeId{pick};
    }

    const auto payload_bytes = static_cast<std::uint32_t>(
        rng_.uniform(profile_.min_payload_bytes, profile_.max_payload_bytes));

    net::Ipv4Header ip;
    ip.tos = 0;
    ip.protocol = net::IpProtocol::kTcp;
    ip.source = sim::node_ip(node_);
    ip.destination = sim::node_ip(destination);
    ip.total_length = static_cast<std::uint16_t>(
        net::Ipv4Header::kWireSize +
        std::min<std::uint32_t>(payload_bytes, 0xffff));

    net::EthernetHeader ethernet;
    ethernet.source = sim::node_mac(node_);
    ethernet.destination = sim::node_mac(destination);
    ethernet.ether_type = net::EtherType::kIpv4;

    ByteWriter writer(net::EthernetHeader::kWireSize +
                      net::Ipv4Header::kWireSize);
    ethernet.serialize(writer);
    sim::legacy::legacy_serialize_ipv4(ip, writer);

    sim::SimFrame frame =
        sim::SimFrame::make(network_.next_frame_id(), std::move(writer).take(),
                            payload_bytes, network_.now(), node_);
    network_.stats().record_best_effort_sent();
    network_.send_best_effort(node_, std::move(frame));
  }

  sim::legacy::LegacyStarNetwork& network_;
  NodeId node_;
  sim::BestEffortProfile profile_;
  Rng rng_;
  bool running_{false};
  bool on_phase_{true};
};

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

struct RunOutcome {
  double seconds{0.0};
  std::uint64_t executed_events{0};
  std::uint64_t rt_sent{0};
  std::uint64_t rt_delivered{0};
  std::uint64_t deadline_misses{0};
  std::uint64_t best_effort_sent{0};
  std::uint64_t best_effort_delivered{0};
  std::uint64_t best_effort_dropped{0};
  /// New kernel only: heap allocations during the measured phase (must be
  /// zero) and arena/heap growth across it.
  std::uint64_t steady_state_allocations{0};
  std::uint64_t arena_frames{0};

  [[nodiscard]] double slots_per_second(Slot slots) const {
    return seconds > 0.0 ? static_cast<double>(slots) / seconds : 0.0;
  }
  [[nodiscard]] double events_per_second() const {
    return seconds > 0.0 ? static_cast<double>(executed_events) / seconds
                         : 0.0;
  }

  [[nodiscard]] bool semantically_equal(const RunOutcome& other) const {
    return executed_events == other.executed_events &&
           rt_sent == other.rt_sent && rt_delivered == other.rt_delivered &&
           deadline_misses == other.deadline_misses &&
           best_effort_sent == other.best_effort_sent &&
           best_effort_delivered == other.best_effort_delivered &&
           best_effort_dropped == other.best_effort_dropped;
  }
};

sim::BestEffortProfile best_effort_profile(const WorkloadConfig& workload) {
  sim::BestEffortProfile profile;
  profile.offered_load = workload.best_effort_load;
  profile.arrivals = sim::BestEffortArrivals::kOnOff;
  return profile;
}

RunOutcome run_new_kernel(const WorkloadConfig& workload) {
  sim::SimConfig config;  // 64 ticks/slot, 1 tick propagation/processing
  sim::SimNetwork network(config, workload.nodes, workload.best_effort_depth);
  network.prime_forwarding();

  std::vector<NewRtDriver> drivers;
  drivers.reserve(static_cast<std::size_t>(workload.nodes) *
                  workload.periods.size());
  std::uint16_t next_channel = 1;
  for (std::uint32_t n = 0; n < workload.nodes; ++n) {
    for (std::size_t k = 0; k < workload.periods.size(); ++k) {
      NewRtDriver driver;
      driver.network = &network;
      driver.source = NodeId{n};
      driver.destination =
          NodeId{(n + workload.strides[k % workload.strides.size()]) %
                 workload.nodes};
      driver.channel = ChannelId{next_channel++};
      driver.period_ticks = config.slots_to_ticks(workload.periods[k]);
      driver.deadline_ticks = driver.period_ticks;
      drivers.push_back(driver);
    }
  }
  for (auto& driver : drivers) driver.start();
  auto sources = sim::attach_best_effort_everywhere(
      network, best_effort_profile(workload), workload.seed);

  const Tick warmup = config.slots_to_ticks(workload.warmup_slots);
  const Tick total =
      config.slots_to_ticks(workload.warmup_slots + workload.measure_slots);
  if (!network.simulator().run_until(warmup)) {
    std::fprintf(stderr, "FATAL: warmup exhausted the event budget\n");
    std::exit(2);
  }

  // Pre-size every pool past its warm-up high-water mark: container
  // growth on a later burst peak is an allocation the steady-state
  // assertion would (correctly) flag, but it is capacity management, not
  // event-loop work — so it happens here, before the measured window.
  network.simulator().reserve_events(std::size_t{1} << 15);
  network.arena().prewarm(512, 160);
  for (std::uint32_t n = 0; n < workload.nodes; ++n) {
    network.node(NodeId{n}).uplink().reserve(2048, workload.best_effort_depth);
    network.ethernet_switch().port(NodeId{n}).reserve(
        2048, workload.best_effort_depth);
  }

  const std::uint64_t allocations_before =
      g_allocation_count.load(std::memory_order_relaxed);
  if (std::getenv("RTETHER_TRACE_ALLOCS") != nullptr) {
    g_trace_allocations.store(true, std::memory_order_relaxed);
  }
  const auto t0 = Clock::now();
  if (!network.simulator().run_until(total)) {
    std::fprintf(stderr, "FATAL: measured run exhausted the event budget\n");
    std::exit(2);
  }
  const auto t1 = Clock::now();
  g_trace_allocations.store(false, std::memory_order_relaxed);
  const std::uint64_t allocations_after =
      g_allocation_count.load(std::memory_order_relaxed);

  RunOutcome outcome;
  outcome.seconds = std::chrono::duration<double>(t1 - t0).count();
  outcome.executed_events = network.simulator().executed_events();
  outcome.rt_delivered = network.stats().total_rt_delivered();
  outcome.deadline_misses = network.stats().total_deadline_misses();
  outcome.best_effort_sent = network.stats().best_effort_sent();
  outcome.best_effort_delivered = network.stats().best_effort_delivered();
  for (const auto& [id, channel] : network.stats().channels()) {
    outcome.rt_sent += channel.frames_sent;
  }
  for (std::uint32_t n = 0; n < workload.nodes; ++n) {
    outcome.best_effort_dropped +=
        network.node(NodeId{n}).uplink().best_effort_dropped();
    outcome.best_effort_dropped +=
        network.ethernet_switch().port(NodeId{n}).best_effort_dropped();
  }
  outcome.steady_state_allocations = allocations_after - allocations_before;
  outcome.arena_frames = network.arena().capacity();
  return outcome;
}

RunOutcome run_legacy_kernel(const WorkloadConfig& workload) {
  sim::SimConfig config;
  sim::legacy::LegacyStarNetwork network(config, workload.nodes,
                                         workload.best_effort_depth);
  network.prime_forwarding();

  std::vector<LegacyRtDriver> drivers;
  drivers.reserve(static_cast<std::size_t>(workload.nodes) *
                  workload.periods.size());
  std::uint16_t next_channel = 1;
  for (std::uint32_t n = 0; n < workload.nodes; ++n) {
    for (std::size_t k = 0; k < workload.periods.size(); ++k) {
      LegacyRtDriver driver;
      driver.network = &network;
      driver.source = NodeId{n};
      driver.destination =
          NodeId{(n + workload.strides[k % workload.strides.size()]) %
                 workload.nodes};
      driver.channel = ChannelId{next_channel++};
      driver.period_ticks = config.slots_to_ticks(workload.periods[k]);
      driver.deadline_ticks = driver.period_ticks;
      drivers.push_back(driver);
    }
  }
  for (auto& driver : drivers) driver.start();
  std::vector<std::unique_ptr<LegacyBestEffortSource>> sources;
  sources.reserve(workload.nodes);
  for (std::uint32_t n = 0; n < workload.nodes; ++n) {
    sources.push_back(std::make_unique<LegacyBestEffortSource>(
        network, NodeId{n}, best_effort_profile(workload), workload.seed));
    sources.back()->start();
  }

  const Tick warmup = config.slots_to_ticks(workload.warmup_slots);
  const Tick total =
      config.slots_to_ticks(workload.warmup_slots + workload.measure_slots);
  network.simulator().run_until(warmup);
  const auto t0 = Clock::now();
  network.simulator().run_until(total);
  const auto t1 = Clock::now();

  RunOutcome outcome;
  outcome.seconds = std::chrono::duration<double>(t1 - t0).count();
  outcome.executed_events = network.simulator().executed_events();
  outcome.rt_delivered = network.stats().total_rt_delivered();
  outcome.deadline_misses = network.stats().total_deadline_misses();
  outcome.best_effort_sent = network.stats().best_effort_sent();
  outcome.best_effort_delivered = network.stats().best_effort_delivered();
  for (const auto& [id, channel] : network.stats().channels()) {
    outcome.rt_sent += channel.frames_sent;
  }
  for (std::uint32_t n = 0; n < workload.nodes; ++n) {
    outcome.best_effort_dropped +=
        network.uplink(NodeId{n}).best_effort_dropped();
    outcome.best_effort_dropped += network.port(NodeId{n}).best_effort_dropped();
  }
  return outcome;
}

bool parse_u64_arg(const char* text, std::uint64_t& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return errno == 0 && end != text && *end == '\0';
}

}  // namespace
}  // namespace rtether

int main(int argc, char** argv) {
  using namespace rtether;

  WorkloadConfig workload;
  std::string json_path = "BENCH_sim.json";
  bool skip_gate = false;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--skip-gate") == 0) {
      skip_gate = true;
      continue;
    }
    std::uint64_t value = 0;
    bool ok = true;
    switch (positional++) {
      case 0:
        ok = parse_u64_arg(argv[i], value) && value >= 64;
        workload.measure_slots = value;
        break;
      case 1:
        json_path = argv[i];
        break;
      default:
        ok = false;
        break;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "bad argument: %s\nusage: bench_sim_kernel "
                   "[measure_slots>=64] [json] [--skip-gate]\n",
                   argv[i]);
      return 64;
    }
  }

  std::printf(
      "sim-kernel bench: %u nodes, %zu RT channels/node, BE load %.2f "
      "(bursty, depth %zu), warmup %llu + measured %llu slots\n",
      workload.nodes, workload.periods.size(), workload.best_effort_load,
      workload.best_effort_depth,
      static_cast<unsigned long long>(workload.warmup_slots),
      static_cast<unsigned long long>(workload.measure_slots));

  // Profiling escape hatch: skip the baseline so a profile shows only the
  // production kernel (implies --skip-gate semantics via the env check).
  const bool only_new = std::getenv("RTETHER_BENCH_NEW_ONLY") != nullptr;
  const RunOutcome legacy = only_new ? RunOutcome{} : run_legacy_kernel(workload);
  const RunOutcome fresh = run_new_kernel(workload);
  if (only_new) {
    std::printf("typed kernel: %9.0f slots/s (%.3f s); baseline skipped\n",
                fresh.slots_per_second(workload.measure_slots), fresh.seconds);
    return 0;
  }

  const double legacy_slots = legacy.slots_per_second(workload.measure_slots);
  const double fresh_slots = fresh.slots_per_second(workload.measure_slots);
  const double speedup = legacy_slots > 0.0 ? fresh_slots / legacy_slots : 0.0;

  std::printf(
      "seed kernel:  %9.0f slots/s  %10.0f events/s  (%.3f s, %llu events)\n",
      legacy_slots, legacy.events_per_second(), legacy.seconds,
      static_cast<unsigned long long>(legacy.executed_events));
  std::printf(
      "typed kernel: %9.0f slots/s  %10.0f events/s  (%.3f s, %llu events)\n",
      fresh_slots, fresh.events_per_second(), fresh.seconds,
      static_cast<unsigned long long>(fresh.executed_events));
  std::printf(
      "  rt sent/delivered/missed %llu/%llu/%llu, be sent/delivered/dropped "
      "%llu/%llu/%llu, arena %llu frames\n",
      static_cast<unsigned long long>(fresh.rt_sent),
      static_cast<unsigned long long>(fresh.rt_delivered),
      static_cast<unsigned long long>(fresh.deadline_misses),
      static_cast<unsigned long long>(fresh.best_effort_sent),
      static_cast<unsigned long long>(fresh.best_effort_delivered),
      static_cast<unsigned long long>(fresh.best_effort_dropped),
      static_cast<unsigned long long>(fresh.arena_frames));
  std::printf("speedup: %.2fx, steady-state allocations: %llu\n", speedup,
              static_cast<unsigned long long>(fresh.steady_state_allocations));

  const bool semantics_ok = fresh.semantically_equal(legacy);
  if (!semantics_ok) {
    std::printf(
        "FAIL: kernels diverged — legacy events=%llu rt=%llu/%llu/%llu "
        "be=%llu/%llu/%llu\n",
        static_cast<unsigned long long>(legacy.executed_events),
        static_cast<unsigned long long>(legacy.rt_sent),
        static_cast<unsigned long long>(legacy.rt_delivered),
        static_cast<unsigned long long>(legacy.deadline_misses),
        static_cast<unsigned long long>(legacy.best_effort_sent),
        static_cast<unsigned long long>(legacy.best_effort_delivered),
        static_cast<unsigned long long>(legacy.best_effort_dropped));
  }

  JsonWriter json;
  json.begin_object();
  json.member("bench", "sim_kernel");
  json.member("nodes", static_cast<std::uint64_t>(workload.nodes));
  json.member("rt_channels",
              static_cast<std::uint64_t>(workload.nodes *
                                         workload.periods.size()));
  json.member("best_effort_load", workload.best_effort_load);
  json.member("warmup_slots", workload.warmup_slots);
  json.member("measure_slots", workload.measure_slots);
  json.member("seed_kernel_slots_per_sec", legacy_slots);
  json.member("typed_kernel_slots_per_sec", fresh_slots);
  json.member("seed_kernel_events_per_sec", legacy.events_per_second());
  json.member("typed_kernel_events_per_sec", fresh.events_per_second());
  json.member("speedup", speedup);
  json.member("executed_events", fresh.executed_events);
  json.member("steady_state_allocations", fresh.steady_state_allocations);
  json.member("arena_frames", fresh.arena_frames);
  json.member("semantics_identical", semantics_ok);
  json.member("deadline_misses", fresh.deadline_misses);
  json.end_object();
  if (!json.write_file(json_path)) {
    std::fprintf(stderr, "FAILED to write %s\n", json_path.c_str());
    return 3;
  }
  std::printf("wrote %s\n", json_path.c_str());

  if (!semantics_ok) {
    return 1;
  }
  if (fresh.steady_state_allocations != 0) {
    std::printf(
        "FAIL: %llu heap allocations in the steady-state event loop "
        "(must be 0)\n",
        static_cast<unsigned long long>(fresh.steady_state_allocations));
    return 1;
  }
  if (!skip_gate && speedup < 3.0) {
    std::printf("FAIL: speedup %.2fx below the 3x gate\n", speedup);
    return 1;
  }
  std::printf(skip_gate ? "gate skipped\n" : "gate passed (>=3x, 0 allocs)\n");
  return 0;
}
