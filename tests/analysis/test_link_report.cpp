#include "analysis/link_report.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/admission.hpp"
#include "core/partitioner.hpp"

namespace rtether::analysis {
namespace {

core::ChannelSpec spec(std::uint32_t src, std::uint32_t dst, Slot p, Slot c,
                       Slot d) {
  return core::ChannelSpec{NodeId{src}, NodeId{dst}, p, c, d};
}

TEST(LinkReport, EmptyNetworkIsEmpty) {
  const core::NetworkState state(4);
  EXPECT_TRUE(network_report(state).empty());
}

TEST(LinkReport, ReportsBothEndsOfAChannel) {
  core::AdmissionController controller(
      4, std::make_unique<core::SymmetricPartitioner>());
  ASSERT_TRUE(controller.request(spec(0, 1, 100, 3, 40)));
  const auto reports = network_report(controller.state());
  ASSERT_EQ(reports.size(), 2u);
  // One uplink (node 0), one downlink (node 1); both d_iu = d_id = 20.
  for (const auto& r : reports) {
    EXPECT_EQ(r.channels, 1u);
    EXPECT_DOUBLE_EQ(r.utilization, 0.03);
    EXPECT_EQ(r.busy_period, 3u);
    EXPECT_EQ(r.min_deadline, 20u);
    // Slack at the first deadline: 20 − h(20) = 20 − 3 = 17.
    EXPECT_EQ(r.min_slack, 17u);
  }
}

TEST(LinkReport, SlackShrinksAsLinkFills) {
  core::AdmissionController controller(
      4, std::make_unique<core::SymmetricPartitioner>());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(controller.request(spec(0, 1, 100, 3, 40)));
  }
  const auto reports = network_report(controller.state());
  ASSERT_EQ(reports.size(), 2u);
  // 6 tasks of d=20 on the uplink: h(20) = 18 → slack 2; sorted first.
  EXPECT_EQ(reports[0].min_slack, 2u);
  EXPECT_EQ(reports[0].channels, 6u);
  EXPECT_EQ(reports[0].busy_period, 18u);
}

TEST(LinkReport, BottlenecksSortFirst) {
  core::AdmissionController controller(
      6, std::make_unique<core::AsymmetricPartitioner>());
  // Hot uplink at node 0: ADPS hands later channels ever-larger uplink
  // shares, squeezing their downlink budgets — ch4 gets d_id = 8, making
  // downlink(n4) the tightest link (slack 8 − 3 = 5).
  for (std::uint32_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(controller.request(spec(0, i, 100, 3, 40)));
  }
  ASSERT_TRUE(controller.request(spec(4, 5, 100, 3, 80)));
  const auto reports = network_report(controller.state());
  ASSERT_GE(reports.size(), 2u);
  EXPECT_EQ(reports.front().node, NodeId{4});
  EXPECT_EQ(reports.front().direction, core::LinkDirection::kDownlink);
  EXPECT_EQ(reports.front().min_slack, 5u);
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_GE(reports[i].min_slack, reports[i - 1].min_slack);
  }
}

TEST(LinkReport, RenderContainsBottleneckRow) {
  core::AdmissionController controller(
      4, std::make_unique<core::SymmetricPartitioner>());
  ASSERT_TRUE(controller.request(spec(0, 1, 100, 3, 40)));
  const auto text = render_network_report(controller.state());
  EXPECT_NE(text.find("uplink(n0)"), std::string::npos);
  EXPECT_NE(text.find("downlink(n1)"), std::string::npos);
}

TEST(LinkHeadroom, MatchesPaperAnalyticLimit) {
  // Empty link, probes {P=100, C=3, d=20}: exactly ⌊20/3⌋ = 6 fit.
  const edf::TaskSet empty;
  EXPECT_EQ(link_headroom(empty, 100, 3, 20), 6u);
  // With d = 33 (the ADPS share): 11 fit.
  EXPECT_EQ(link_headroom(empty, 100, 3, 33), 11u);
}

TEST(LinkHeadroom, AccountsForExistingLoad) {
  edf::TaskSet link;
  link.add({ChannelId(1), 100, 3, 20});
  link.add({ChannelId(2), 100, 3, 20});
  EXPECT_EQ(link_headroom(link, 100, 3, 20), 4u);
}

TEST(LinkHeadroom, UtilizationBoundCapsImplicitDeadlines) {
  const edf::TaskSet empty;
  // {P=10, C=5, d=10}: exactly two fill the link to U = 1.
  EXPECT_EQ(link_headroom(empty, 10, 5, 10), 2u);
}

TEST(LinkHeadroom, LimitRespected) {
  const edf::TaskSet empty;
  EXPECT_EQ(link_headroom(empty, 1000, 1, 1000, 7), 7u);
}

TEST(LinkHeadroom, ProbeDoesNotMutateInput) {
  edf::TaskSet link;
  link.add({ChannelId(1), 100, 3, 20});
  (void)link_headroom(link, 100, 3, 20);
  EXPECT_EQ(link.size(), 1u);
}

}  // namespace
}  // namespace rtether::analysis
