#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rtether {
namespace {

TEST(RunningStats, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic example = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 100; ++i) {
    const double v = static_cast<double>(i * i % 37);
    all.add(v);
    (i < 50 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 1.0);
}

TEST(Histogram, CountsAndEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(5.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.bin(5), 1u);
}

TEST(Histogram, OutOfRangeSaturates) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(9), 1u);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.add(static_cast<double>(i) + 0.5);
  }
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
  EXPECT_NEAR(h.quantile(1.0), 100.0, 1.5);
}

TEST(Histogram, BinLower) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(1), 12.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(5), 20.0);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string text = h.render(10);
  EXPECT_NE(text.find("1"), std::string::npos);
  EXPECT_NE(text.find("2"), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
}

}  // namespace
}  // namespace rtether
