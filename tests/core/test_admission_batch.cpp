#include "core/admission.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "core/partitioner.hpp"

namespace rtether::core {
namespace {

ChannelSpec spec(std::uint32_t src, std::uint32_t dst, Slot p, Slot c,
                 Slot d) {
  return ChannelSpec{NodeId{src}, NodeId{dst}, p, c, d};
}

/// Randomized request stream with a mix of feasible, borderline and invalid
/// specs. Constrained deadlines (d < P) keep the demand scan on the slow
/// path rather than the Liu & Layland shortcut.
std::vector<ChannelRequest> random_stream(std::uint64_t seed,
                                          std::size_t count,
                                          std::uint32_t nodes) {
  Rng rng(seed);
  static constexpr Slot kPeriods[] = {40, 60, 80, 100, 150, 200, 300};
  std::vector<ChannelRequest> requests;
  requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto src = static_cast<std::uint32_t>(rng.index(nodes));
    auto dst = static_cast<std::uint32_t>(rng.index(nodes));
    if (dst == src) {
      dst = (dst + 1) % nodes;
    }
    const Slot period = kPeriods[rng.index(std::size(kPeriods))];
    const Slot capacity = 1 + rng.index(4);
    // Mostly valid constrained deadlines; ~1/16 structurally invalid.
    Slot deadline;
    if (rng.index(16) == 0) {
      deadline = rng.index(2 * capacity);  // violates d ≥ 2C
    } else {
      deadline = 2 * capacity + rng.index(period - 2 * capacity + 1);
    }
    requests.push_back(ChannelRequest{spec(src, dst, period, capacity,
                                           deadline)});
  }
  return requests;
}

/// Drives the same stream through the reference controller (one request at
/// a time) and the batch engine, and requires identical outcomes: the same
/// accept/reject pattern, the same channel IDs and partitions, the same
/// rejection reasons and diagnostic strings.
void expect_equivalent(std::uint64_t seed, std::size_t count,
                       std::uint32_t nodes, const std::string& scheme) {
  const auto requests = random_stream(seed, count, nodes);

  AdmissionController controller(nodes, make_partitioner(scheme));
  AdmissionEngine engine(nodes, make_partitioner(scheme));
  const auto batch = engine.admit_batch(requests);
  ASSERT_EQ(batch.outcomes.size(), requests.size());

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto expected = controller.request(requests[i].spec);
    const auto& actual = batch.outcomes[i];
    ASSERT_EQ(expected.has_value(), actual.has_value())
        << "request " << i << " (" << requests[i].spec.to_string()
        << "): sequential and batch disagree";
    if (expected.has_value()) {
      EXPECT_EQ(expected->id, actual->id) << "request " << i;
      EXPECT_EQ(expected->partition, actual->partition) << "request " << i;
    } else {
      EXPECT_EQ(expected.error().reason, actual.error().reason)
          << "request " << i;
      EXPECT_EQ(expected.error().detail, actual.error().detail)
          << "request " << i;
    }
  }

  EXPECT_EQ(engine.state().channel_count(),
            controller.state().channel_count());
  EXPECT_EQ(engine.stats().accepted, controller.stats().accepted);
  EXPECT_EQ(engine.stats().rejected, controller.stats().rejected);
}

TEST(AdmissionBatch, MatchesSequentialSdpsSmall) {
  expect_equivalent(1, 200, 4, "SDPS");
}

TEST(AdmissionBatch, MatchesSequentialSdpsSaturating) {
  // Few nodes + many requests → links saturate; most of the stream
  // exercises the rejection path.
  expect_equivalent(2, 600, 3, "SDPS");
}

TEST(AdmissionBatch, MatchesSequentialAdps) {
  // ADPS candidates depend on the evolving link loads, so this also checks
  // that the engine presents the partitioner with the identical state.
  expect_equivalent(3, 400, 6, "ADPS");
}

TEST(AdmissionBatch, MatchesSequentialSearch) {
  // The search partitioner proposes many candidates per request — stresses
  // repeated trial tests against the same caches.
  expect_equivalent(4, 120, 4, "Search");
}

TEST(AdmissionBatch, MatchesSequentialAcrossSeeds) {
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    expect_equivalent(seed, 250, 5, "ADPS");
  }
}

TEST(AdmissionBatch, SingleAdmitMatchesController) {
  const auto requests = random_stream(21, 300, 4);
  AdmissionController controller(4, make_partitioner("SDPS"));
  AdmissionEngine engine(4, make_partitioner("SDPS"));
  for (const auto& request : requests) {
    const auto expected = controller.request(request.spec);
    const auto actual = engine.admit(request.spec);
    ASSERT_EQ(expected.has_value(), actual.has_value());
    if (expected.has_value()) {
      EXPECT_EQ(expected->id, actual->id);
      EXPECT_EQ(expected->partition, actual->partition);
    }
  }
}

TEST(AdmissionBatch, ReleaseRebuildsCachesAndStaysEquivalent) {
  const auto first = random_stream(31, 150, 4);
  const auto second = random_stream(32, 150, 4);

  AdmissionController controller(4, make_partitioner("ADPS"));
  AdmissionEngine engine(4, make_partitioner("ADPS"));

  std::vector<ChannelId> admitted;
  const auto batch1 = engine.admit_batch(first);
  for (std::size_t i = 0; i < first.size(); ++i) {
    const auto expected = controller.request(first[i].spec);
    ASSERT_EQ(expected.has_value(), batch1.outcomes[i].has_value());
    if (expected.has_value()) {
      admitted.push_back(expected->id);
    }
  }

  // Tear down every other admitted channel on both sides.
  for (std::size_t i = 0; i < admitted.size(); i += 2) {
    EXPECT_TRUE(controller.release(admitted[i]));
    EXPECT_TRUE(engine.release(admitted[i]));
  }

  // A second batch over the mutated state must still match.
  const auto batch2 = engine.admit_batch(second);
  for (std::size_t i = 0; i < second.size(); ++i) {
    const auto expected = controller.request(second[i].spec);
    ASSERT_EQ(expected.has_value(), batch2.outcomes[i].has_value())
        << "post-release request " << i;
    if (expected.has_value()) {
      EXPECT_EQ(expected->id, batch2.outcomes[i]->id);
      EXPECT_EQ(expected->partition, batch2.outcomes[i]->partition);
    }
  }
}

TEST(AdmissionBatch, RandomizedReleaseChurnStaysEquivalent) {
  // Long-running plants interleave teardown with admission: rounds of
  // batched admits, each followed by a random subset of releases. After
  // every round the engine must remain decision-identical to the reference
  // controller — including re-admissions that land on IDs the releases
  // freed (the allocator reuses smallest-first) and on links whose caches
  // were rebuilt by `release`.
  AdmissionController controller(5, make_partitioner("ADPS"));
  AdmissionEngine engine(5, make_partitioner("ADPS"));
  Rng rng(77);
  std::vector<ChannelId> live;

  for (std::uint64_t round = 0; round < 6; ++round) {
    const auto requests = random_stream(100 + round, 120, 5);
    const auto batch = engine.admit_batch(requests);
    ASSERT_EQ(batch.outcomes.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const auto expected = controller.request(requests[i].spec);
      const auto& actual = batch.outcomes[i];
      ASSERT_EQ(expected.has_value(), actual.has_value())
          << "round " << round << " request " << i;
      if (expected.has_value()) {
        EXPECT_EQ(expected->id, actual->id);
        EXPECT_EQ(expected->partition, actual->partition);
        live.push_back(expected->id);
      } else {
        EXPECT_EQ(expected.error().reason, actual.error().reason);
        EXPECT_EQ(expected.error().detail, actual.error().detail);
      }
    }

    // Tear down a random ~third of the live channels on both sides.
    std::vector<ChannelId> keep;
    for (const ChannelId id : live) {
      if (rng.index(3) == 0) {
        EXPECT_TRUE(controller.release(id));
        EXPECT_TRUE(engine.release(id));
      } else {
        keep.push_back(id);
      }
    }
    live = std::move(keep);

    EXPECT_EQ(engine.state().channel_count(),
              controller.state().channel_count());
    EXPECT_EQ(engine.stats().released, controller.stats().released);
  }

  // Double release reports false on both paths.
  if (!live.empty()) {
    EXPECT_TRUE(engine.release(live.front()));
    EXPECT_FALSE(engine.release(live.front()));
  }
}

TEST(AdmissionBatch, NonCheckpointScanFallsBackAndMatches) {
  const auto requests = random_stream(41, 80, 3);
  AdmissionConfig config;
  config.scan = edf::DemandScan::kEverySlot;
  AdmissionController controller(3, make_partitioner("SDPS"), config);
  AdmissionEngine engine(3, make_partitioner("SDPS"), config);
  const auto batch = engine.admit_batch(requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto expected = controller.request(requests[i].spec);
    ASSERT_EQ(expected.has_value(), batch.outcomes[i].has_value());
  }
}

TEST(AdmissionBatch, EmptyBatch) {
  AdmissionEngine engine(2, make_partitioner("SDPS"));
  const auto result = engine.admit_batch({});
  EXPECT_TRUE(result.outcomes.empty());
  EXPECT_EQ(result.accepted(), 0u);
  EXPECT_EQ(result.rejected(), 0u);
}

TEST(AdmissionBatch, BatchResultCounts) {
  AdmissionEngine engine(4, make_partitioner("SDPS"));
  const std::vector<ChannelRequest> requests = {
      ChannelRequest{spec(0, 1, 100, 3, 40)},
      ChannelRequest{spec(0, 1, 100, 3, 5)},  // invalid: d < 2C
      ChannelRequest{spec(1, 2, 100, 3, 40)},
  };
  const auto result = engine.admit_batch(requests);
  EXPECT_EQ(result.accepted(), 2u);
  EXPECT_EQ(result.rejected(), 1u);
  EXPECT_EQ(engine.state().channel_count(), 2u);
}

TEST(AdmissionBatch, ReleaseOfNeverAdmittedIdIsRefusedWithoutResidue) {
  // Negative teardown paths: IDs nobody holds (reserved 0, plausible but
  // never assigned, out in the 16-bit weeds) must be refused, leave no
  // trace in state or stats, and not perturb later admissions.
  AdmissionEngine engine(4, make_partitioner("ADPS"));
  const auto admitted = engine.admit(spec(0, 1, 100, 3, 40));
  ASSERT_TRUE(admitted.has_value());

  EXPECT_FALSE(engine.release(ChannelId{0}));
  EXPECT_FALSE(engine.release(ChannelId{7}));       // never assigned
  EXPECT_FALSE(engine.release(ChannelId{65535}));   // top of the ID space
  EXPECT_EQ(engine.stats().released, 0u);
  EXPECT_EQ(engine.state().channel_count(), 1u);

  // The refused releases must not have touched the per-link caches: the
  // next admission still matches a fresh reference controller that never
  // saw them.
  AdmissionController reference(4, make_partitioner("ADPS"));
  (void)reference.request(spec(0, 1, 100, 3, 40));
  const auto expected = reference.request(spec(1, 2, 100, 3, 40));
  const auto actual = engine.admit(spec(1, 2, 100, 3, 40));
  ASSERT_TRUE(expected.has_value() && actual.has_value());
  EXPECT_EQ(*actual, *expected);
}

TEST(AdmissionBatch, DoubleReleaseIsRefusedAndFreedIdIsReassigned) {
  AdmissionEngine engine(4, make_partitioner("SDPS"));
  const auto first = engine.admit(spec(0, 1, 100, 3, 40));
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(engine.release(first->id));
  EXPECT_FALSE(engine.release(first->id));  // double teardown
  EXPECT_EQ(engine.stats().released, 1u);
  EXPECT_EQ(engine.state().channel_count(), 0u);

  // Smallest-free reuse hands the same ID to the next accept; releasing it
  // then tears down the new owner, once.
  const auto second = engine.admit(spec(2, 3, 100, 3, 40));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->id, first->id);
  EXPECT_TRUE(engine.release(second->id));
  EXPECT_FALSE(engine.release(second->id));
}

}  // namespace
}  // namespace rtether::core
