#include "traffic/master_slave.hpp"

#include "common/assert.hpp"

namespace rtether::traffic {

const char* to_string(FlowDirection direction) {
  switch (direction) {
    case FlowDirection::kMasterToSlave:
      return "master->slave";
    case FlowDirection::kSlaveToMaster:
      return "slave->master";
    case FlowDirection::kMixed:
      return "mixed";
  }
  return "?";
}

MasterSlaveWorkload::MasterSlaveWorkload(MasterSlaveConfig config,
                                         std::uint64_t seed)
    : config_(config), rng_(seed) {
  RTETHER_ASSERT(config_.masters >= 1);
  RTETHER_ASSERT(config_.slaves >= 1);
}

core::ChannelSpec MasterSlaveWorkload::next() {
  const NodeId master{
      static_cast<std::uint32_t>(rng_.index(config_.masters))};
  const NodeId slave{static_cast<std::uint32_t>(
      config_.masters + rng_.index(config_.slaves))};

  bool master_sends = true;
  switch (config_.direction) {
    case FlowDirection::kMasterToSlave:
      master_sends = true;
      break;
    case FlowDirection::kSlaveToMaster:
      master_sends = false;
      break;
    case FlowDirection::kMixed:
      master_sends = rng_.bernoulli(0.5);
      break;
  }

  core::ChannelSpec spec;
  spec.source = master_sends ? master : slave;
  spec.destination = master_sends ? slave : master;
  spec.period = config_.period.sample(rng_);
  spec.capacity = config_.capacity.sample(rng_);
  spec.deadline = config_.deadline.sample(rng_);
  return spec;
}

std::vector<core::ChannelSpec> MasterSlaveWorkload::generate(
    std::size_t count) {
  std::vector<core::ChannelSpec> specs;
  specs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    specs.push_back(next());
  }
  return specs;
}

}  // namespace rtether::traffic
