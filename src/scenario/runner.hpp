#pragma once

/// @file runner.hpp
/// Executes one ScenarioSpec through every admission path the library
/// offers and checks the two-sided conformance oracle:
///
///   1. **Agreement** — the sequential `AdmissionController` and every
///      configured `core::AdmissionBackend` kind (batched engine, sharded
///      parallel engine, resident admission service, ...) must produce
///      bit-identical outcomes on the same op stream: same
///      accepts/rejects, same channel IDs, same deadline partitions, same
///      rejection reasons *and diagnostic strings*. The multihop
///      `PathAdmissionController` runs the same stream over the scenario's
///      fabric and must uphold its own invariants (generalized Eqs
///      18.8/18.9, per-hop feasibility, residue-free rejection); on star
///      topologies under SDPS with even deadlines it must also match the
///      classic controller decision-for-decision (the documented
///      equivalence).
///   2. **Guarantee** — for star scenarios the surviving channel set is
///      established over the real management protocol (`proto::Stack`,
///      which must agree with the analytic decisions, IDs and uplink
///      deadlines — the wire is the fourth witness) and driven through the
///      slot-accurate simulator, optionally against best-effort
///      cross-traffic: every frame of every admitted channel must arrive
///      within d_i + T_latency (Eq 18.1), with zero losses.
///   3. **Survival** — scenarios with a fault plan (`spec.faults`) replay
///      it against the simulated wire: windowed faults (link down, frame
///      loss, CRC corruption, management delay) act through the
///      transmitter fault hooks, structural faults (switch reboot, node
///      crash) run their recovery protocol between simulation segments.
///      The contract: deadline misses stay zero for *every* channel
///      (faults only remove load from the EDF schedule), channels outside
///      every fault's scope stay loss-free, faulted channels account for
///      every frame exactly (sent == delivered + dropped), and post-reboot
///      re-registration is bit-identical to admitting the same channels on
///      a fresh controller.
///   TT scenarios (`spec.scheme == "TT"`) swap the EDF engine battery for
///   the time-triggered one: the reference `core::GateScheduleAdmission`
///   runs the op stream with a per-accept placement audit (offsets in
///   bounds, store-and-forward ordering, pairwise gcd-residue
///   conflict-freedom), the "tt" `AdmissionBackend` must match it
///   bit-identically, and the simulation phase installs the admitted gate
///   tables into every transmitter and checks the scheme's own contract:
///   zero misses *and zero delivery jitter* — every frame position's
///   delivery delay is identical in every period.
///
///   4. **Calculus cross-check** — every reference admission decision is
///      audited by the independent `analysis::CalculusOracle`: an accept
///      must satisfy the network-calculus necessary condition, and an
///      infeasibility rejection must not contradict the calculus
///      sufficient condition. Either way a violation is a replayable
///      scenario failure, not a process abort.
///
/// The runner additionally audits every DPS candidate against Eqs
/// 18.8/18.9 *before* the engines see it. The engines enforce those
/// equations with a hard assert (admission is a safety property); the audit
/// turns "a broken partitioner aborts the process" into "a broken
/// partitioner fails the scenario with a replayable seed", which is what
/// lets the shrinker minimize such bugs — see the off-by-one demo in
/// tests/scenario/test_scenario_shrinker.cpp.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/multihop.hpp"
#include "core/partitioner.hpp"
#include "scenario/spec.hpp"
#include "sim/fault.hpp"

namespace rtether::scenario {

enum class ViolationKind : std::uint8_t {
  kMalformedSpec,         ///< spec failed ScenarioSpec::well_formed()
  kPartitionInvariant,    ///< DPS candidate violates Eq 18.8/18.9
  kPathSplitInvariant,    ///< k-hop split violates generalized Eq 18.8/18.9
  kEngineDisagreement,    ///< engines diverge on outcome/ID/diagnostics
  kReleaseDisagreement,   ///< engines diverge on a teardown result
  kMultihopParity,        ///< multihop vs classic decision mismatch (SDPS)
  kStateInconsistent,     ///< live-channel registries out of sync
  kInfeasibleState,       ///< a committed link fails the EDF test
  kStackDivergence,       ///< wire-protocol outcome != analytic outcome
  kDeadlineMiss,          ///< simulation: frame late (Eq 18.1 violated)
  kFrameLoss,             ///< simulation: RT frame sent but never delivered
  kSimBudgetExhausted,    ///< simulation: kernel runaway guard tripped
  kFaultContract,         ///< fault survival contract broken (see below)
  kReadmissionDivergence, ///< post-reboot re-admission != fresh admission
  kCalculusViolation,     ///< EDF accept breaks the calculus lower bound
  kCalculusDisagreement,  ///< EDF reject despite calculus-proven feasibility
  kGateConflict,          ///< TT gate placement conflicts or breaks bounds
  kJitterViolation,       ///< TT delivery jitter nonzero (zero by design)
};

[[nodiscard]] const char* to_string(ViolationKind kind);

struct Violation {
  ViolationKind kind;
  /// Op index the violation surfaced at; SIZE_MAX for end-of-run checks.
  std::size_t op_index{static_cast<std::size_t>(-1)};
  std::string detail;

  [[nodiscard]] std::string to_string() const;
};

/// Compact fingerprint of the simulation phase. The determinism suite and
/// the golden-stat pins compare these field-for-field: a kernel refactor
/// that shifts event ordering, per-link service order or miss accounting in
/// any way shows up as a digest mismatch with a replayable spec. All fields
/// are zero when the simulation phase did not run.
struct SimDigest {
  /// Events the kernel executed, including the post-stop drain.
  std::uint64_t executed_events{0};
  std::uint64_t rt_delivered{0};
  std::uint64_t deadline_misses{0};
  std::uint64_t best_effort_sent{0};
  std::uint64_t best_effort_delivered{0};
  /// FNV-1a over every per-link transmitter counter (node uplinks then
  /// switch ports, in node order), the switch counters, and the per-channel
  /// delivery records including delay statistics bit patterns.
  std::uint64_t link_stats_hash{0};

  friend bool operator==(const SimDigest&, const SimDigest&) = default;
};

struct ScenarioResult {
  bool passed{false};
  std::vector<Violation> violations;
  // Bookkeeping for reports and the campaign's throughput metrics.
  std::size_t admitted{0};
  std::size_t rejected{0};
  std::size_t released{0};
  std::uint64_t frames_delivered{0};
  /// Slots of simulated time this scenario executed (0 when sim skipped).
  std::uint64_t simulated_slots{0};
  /// Simulation fingerprint (all-zero when the sim phase was skipped).
  SimDigest sim_digest;
  /// Worst per-position delivery-delay spread (ticks) across the surviving
  /// channels: frame position j of a period is compared only against
  /// position j of other periods, the same measure the TT zero-jitter
  /// audit enforces at 0. Recorded for TT runs always, for EDF runs only
  /// under `RunnerOptions::record_jitter` (the ablation bench's metric);
  /// 0 otherwise.
  std::uint64_t worst_jitter_ticks{0};
  /// Per-fault-class injection counts (frames affected for windowed
  /// classes, occurrences for structural ones); all zero without a fault
  /// plan. Campaigns aggregate these to prove every class was exercised.
  std::array<std::uint64_t, sim::kFaultKindCount> fault_injections{};
  /// Partitions of the fabric simulation phase (multi-switch scenarios
  /// with `simulate`; 0 otherwise) and the records that crossed its
  /// cut links — the bench's partitioning/communication metrics.
  std::size_t fabric_partitions{0};
  std::uint64_t cut_link_records{0};
  /// Calculus-oracle consultations this scenario triggered (necessary
  /// checks on accepts, sufficiency checks on infeasibility rejections).
  std::uint64_t oracle_checks{0};

  [[nodiscard]] std::string summary() const;
};

/// Dependency-injection points, used by the fault-demo tests to plant
/// deliberately broken components and watch the oracle catch them.
struct RunnerOptions {
  /// Star-engine DPS factory; defaults to `core::make_partitioner`.
  std::function<std::unique_ptr<core::DeadlinePartitioner>(
      const std::string& scheme)>
      partitioner_factory;
  /// Multihop split factory; defaults to mapping SDPS→SDPS, else ADPS.
  std::function<std::unique_ptr<core::PathPartitioner>(
      const std::string& scheme)>
      path_partitioner_factory;
  /// Worker threads for the parallel/service backends (their decisions are
  /// thread-count independent; 2 keeps the sharded paths honest without
  /// oversubscribing campaign workers).
  unsigned parallel_threads{2};
  /// Worker threads for the fabric simulation phase of multi-switch
  /// scenarios (sim/parallel.hpp). 0 runs the same barrier rounds inline
  /// on the caller — the sequential baseline; any value produces the
  /// bit-identical SimDigest (the determinism suite pins this).
  unsigned fabric_threads{0};
  /// `core::AdmissionBackend` kinds checked against the reference
  /// controller on star scenarios (see `core::make_admission_backend`).
  /// The campaign's `--backend service` mode appends "service".
  std::vector<std::string> backends{"batched", "parallel"};
  /// Run the simulation phase of star scenarios (the campaign's pure
  /// admission mode turns this off for breadth-first sweeps).
  bool run_simulation{true};
  /// Record per-delivery delays in the EDF simulation phase and report
  /// `ScenarioResult::worst_jitter_ticks`. Off by default — the vector
  /// grows one entry per delivered frame, a cost campaigns must not pay.
  /// TT runs record regardless (their jitter audit needs the delays).
  bool record_jitter{false};
};

/// Runs one scenario; stops at the first violation (a failing scenario is a
/// bug report, not a survey).
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec,
                                          const RunnerOptions& options = {});

}  // namespace rtether::scenario
