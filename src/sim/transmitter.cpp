#include "sim/transmitter.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rtether::sim {

Transmitter::Transmitter(Simulator& simulator, const SimConfig& config,
                         std::string name, DeliverFn deliver,
                         std::size_t best_effort_depth)
    : simulator_(simulator),
      config_(config),
      name_(std::move(name)),
      deliver_(std::move(deliver)),
      best_effort_queue_(best_effort_depth) {
  RTETHER_ASSERT(deliver_ != nullptr);
}

void Transmitter::enqueue_rt(Tick deadline_key, SimFrame frame) {
  rt_queue_.push(deadline_key, std::move(frame));
  stats_.max_rt_queue_depth =
      std::max(stats_.max_rt_queue_depth, rt_queue_.size());
  schedule_start();
}

void Transmitter::enqueue_best_effort(SimFrame frame) {
  if (best_effort_queue_.push(std::move(frame))) {
    stats_.max_best_effort_queue_depth = std::max(
        stats_.max_best_effort_queue_depth, best_effort_queue_.size());
  }
  schedule_start();
}

void Transmitter::schedule_start() {
  // Defer the start-of-transmission decision to a same-tick arbitration
  // event instead of grabbing the wire inline. Two frames released at the
  // same tick used to be served in *event execution* order: the first
  // enqueue found the link idle and started transmitting even when the
  // second had the earlier EDF deadline — a full slot of priority-inversion
  // blocking the per-link analysis (Eqs 18.2–18.5) does not account for,
  // found by the scenario fuzzer as a real deadline miss (seed 37 of the
  // default campaign, minimized to two zero-slack channels sharing an
  // uplink). With the deferral, every release scheduled at tick T runs
  // before the arbitration event created at T, so service starts — still at
  // tick T — with the true EDF minimum of everything available.
  if (busy_ || start_pending_) {
    return;
  }
  // Nothing queued (a completion with both queues drained — the common
  // case in sparse periodic traffic): don't burn an event; the next
  // enqueue schedules its own arbitration.
  if (rt_queue_.empty() && best_effort_queue_.empty()) {
    return;
  }
  start_pending_ = true;
  simulator_.schedule_in(0, [this] {
    start_pending_ = false;
    try_start();
  });
}

void Transmitter::try_start() {
  if (busy_) {
    return;  // non-preemptive: the in-flight frame finishes first
  }
  // Strict priority: RT (EDF order) before best-effort (FCFS order).
  std::optional<SimFrame> frame = rt_queue_.pop();
  const bool is_rt = frame.has_value();
  if (!frame) {
    frame = best_effort_queue_.pop();
  }
  if (!frame) {
    return;
  }

  busy_ = true;
  const Tick tx_ticks = config_.transmission_ticks(frame->wire_bytes());
  stats_.busy_ticks += tx_ticks;
  if (is_rt) {
    ++stats_.rt_frames_sent;
  } else {
    ++stats_.best_effort_frames_sent;
  }

  // Move the frame into the completion event.
  simulator_.schedule_in(
      tx_ticks,
      [this, frame = std::move(*frame)]() mutable {
        busy_ = false;
        const Tick completion = simulator_.now();
        deliver_(std::move(frame), completion);
        schedule_start();
      });
}

}  // namespace rtether::sim
