/// Fault-injection campaign driver + throughput bench.
///
/// Runs a fault-heavy scenario campaign (GeneratorProfile::kFaultHeavy —
/// every scenario carries a deterministic fault plan) and gates on the
/// survival contract: the campaign must come back green (zero violations of
/// any kind, survival-contract and calculus-oracle ones included) AND every
/// fault class must have been injected at least once, so a regression that
/// silently stops exercising — say — switch reboots fails the job instead
/// of passing vacuously. Reports scenario throughput and the
/// calculus-oracle consultation count (BENCH_fault.json) so fault-campaign
/// capacity joins the repo's perf trajectory.
///
/// Usage:
///   bench_fault_campaign [scenarios] [threads] [json] [seconds] [base_seed]
///       [--out-dir DIR]
///
///   scenarios  campaign size (default 10000)
///   threads    worker threads, 0 = hardware (default 0)
///   json       BENCH JSON path (default BENCH_fault.json)
///   seconds    wall-clock budget, 0 = unbounded (default 0)
///   base_seed  first seed (default 1); scenario i replays seed base+i
///   --out-dir  where failing seeds/specs are written (default
///              fault_failures)
///
/// Exit codes: 0 green, 1 failing scenarios, 2 a fault class was never
/// injected, 3 JSON write failure, 64 usage error.

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "common/json_writer.hpp"
#include "scenario/campaign.hpp"
#include "scenario/json_io.hpp"
#include "sim/fault.hpp"

using namespace rtether;

namespace {

/// Strict numeric argv parsing: a typo'd count must fail the invocation,
/// not silently become a 0-scenario campaign that exits green.
bool parse_u64_arg(const char* text, std::uint64_t& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return errno == 0 && end != text && *end == '\0';
}

bool parse_double_arg(const char* text, double& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtod(text, &end);
  return errno == 0 && end != text && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  scenario::CampaignConfig config;
  config.scenario_count = 10'000;
  config.threads = 0;
  config.generator.profile = scenario::GeneratorProfile::kFaultHeavy;
  std::string json_path = "BENCH_fault.json";
  std::string out_dir = "fault_failures";

  int positional = 0;
  bool ok = true;
  for (int i = 1; i < argc && ok; ++i) {
    if (std::strcmp(argv[i], "--out-dir") == 0) {
      ok = i + 1 < argc;
      if (ok) out_dir = argv[++i];
      continue;
    }
    std::uint64_t value = 0;
    switch (positional++) {
      case 0:
        ok = parse_u64_arg(argv[i], value);
        config.scenario_count = static_cast<std::size_t>(value);
        break;
      case 1:
        ok = parse_u64_arg(argv[i], value) && value <= 4096;
        config.threads = static_cast<unsigned>(value);
        break;
      case 2:
        json_path = argv[i];
        break;
      case 3:
        ok = parse_double_arg(argv[i], config.time_budget_seconds);
        break;
      case 4:
        ok = parse_u64_arg(argv[i], config.base_seed);
        break;
      default:
        ok = false;
        break;
    }
    if (!ok) {
      std::fprintf(stderr, "bad argument: %s\n", argv[i]);
    }
  }
  if (!ok) {
    std::fprintf(stderr,
                 "usage: bench_fault_campaign [scenarios] [threads] [json] "
                 "[seconds] [base_seed] [--out-dir DIR]\n");
    return 64;
  }

  std::printf(
      "fault campaign: %zu scenarios, %u threads (0=hw), base seed %llu%s\n",
      config.scenario_count, config.threads,
      static_cast<unsigned long long>(config.base_seed),
      config.time_budget_seconds > 0.0 ? ", time-bounded" : "");

  const auto result = scenario::run_campaign(config);

  std::printf(
      "ran %zu scenarios in %.2f s: %.0f scenarios/s, %llu oracle checks\n",
      result.scenarios_run, result.seconds, result.scenarios_per_second(),
      static_cast<unsigned long long>(result.oracle_checks_total));
  std::uint64_t min_injections = result.fault_injections_total[0];
  std::printf("  injections per class:");
  for (std::size_t kind = 0; kind < sim::kFaultKindCount; ++kind) {
    const std::uint64_t count = result.fault_injections_total[kind];
    min_injections = std::min(min_injections, count);
    std::printf(" %s=%llu", sim::to_string(static_cast<sim::FaultKind>(kind)),
                static_cast<unsigned long long>(count));
  }
  std::printf("\n  failures=%zu%s\n", result.failures,
              result.time_budget_hit ? " (time budget hit)" : "");

  if (!result.failing.empty()) {
    std::filesystem::create_directories(out_dir);
    for (const auto& failure : result.failing) {
      const std::string stem =
          out_dir + "/seed-" + std::to_string(failure.seed);
      if (!scenario::save_scenario(failure.spec, stem + ".json") ||
          !scenario::save_scenario(failure.minimized, stem + ".min.json")) {
        std::fprintf(stderr, "FAILED to write %s\n", stem.c_str());
      }
      std::printf("FAILING seed %llu: %s\n  spec: %s\n  min:  %s\n",
                  static_cast<unsigned long long>(failure.seed),
                  failure.detail.c_str(), (stem + ".json").c_str(),
                  (stem + ".min.json").c_str());
    }
  }

  JsonWriter json;
  json.begin_object();
  json.member("bench", "fault_campaign");
  json.member("campaign_size",
              static_cast<std::uint64_t>(config.scenario_count));
  json.member("scenarios_run",
              static_cast<std::uint64_t>(result.scenarios_run));
  json.member("threads", static_cast<std::uint64_t>(config.threads));
  json.member("base_seed", config.base_seed);
  json.member("seconds", result.seconds);
  json.member("shrink_seconds", result.shrink_seconds);
  json.member("scenarios_per_sec", result.scenarios_per_second());
  json.member("sim_slots_per_sec", result.simulated_slots_per_second());
  json.member("oracle_checks", result.oracle_checks_total);
  json.member("failures", static_cast<std::uint64_t>(result.failures));
  json.member("min_injections_per_class", min_injections);
  json.member("time_budget_hit", result.time_budget_hit);
  json.member("sim_digest_xor", result.sim_digest_xor);
  json.key("injections_per_class").begin_object();
  for (std::size_t kind = 0; kind < sim::kFaultKindCount; ++kind) {
    json.member(sim::to_string(static_cast<sim::FaultKind>(kind)),
                result.fault_injections_total[kind]);
  }
  json.end_object();
  json.key("failing_seeds").begin_array();
  for (const auto& failure : result.failing) {
    json.value(failure.seed);
  }
  json.end_array();
  json.end_object();
  if (!json.write_file(json_path)) {
    std::fprintf(stderr, "FAILED to write %s\n", json_path.c_str());
    return 3;
  }
  std::printf("wrote %s\n", json_path.c_str());

  if (result.failures != 0) {
    return 1;
  }
  // Injection-coverage gate: campaigns of ≥1000 fault-heavy scenarios draw
  // hundreds of events per class; zero means a class stopped firing.
  if (result.scenarios_run >= 1000 && min_injections == 0) {
    std::printf("FAIL: a fault class was never injected\n");
    return 2;
  }
  return 0;
}
