#pragma once

/// @file admission_internal.hpp
/// Admission internals shared between `AdmissionEngine` (the sequential
/// batched pipeline), `ParallelAdmissionEngine` (the fork-join sharded one)
/// and `AdmissionService` (the resident sharded one). All must reach
/// bit-identical decisions and diagnostics to the reference
/// `AdmissionController`, so the candidate trial itself, every rejection
/// string and the link-conflict partitioning primitives live in exactly one
/// place. Not part of the public API surface.

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "core/admission.hpp"
#include "core/channel.hpp"
#include "core/network_state.hpp"
#include "edf/feasibility.hpp"

namespace rtether::core::admission_internal {

/// "<spec> is invalid", plus the d < 2C explanation when that is the cause —
/// exactly the string `AdmissionController::request` rejects with.
[[nodiscard]] std::string invalid_spec_detail(const ChannelSpec& spec);

/// "<side><node>: <report summary>" — the per-link rejection diagnostic.
[[nodiscard]] std::string link_rejection_detail(
    const char* side, NodeId node, const edf::FeasibilityReport& report);

/// The cache-backed candidate trial: test the two pseudo-tasks against the
/// source uplink and destination downlink via their `LinkScanCache`s, and on
/// success commit the channel into `state` and both caches. On failure,
/// fills `reason`/`detail` and leaves state and caches untouched (trials are
/// const; the grid is re-memoized via `reserve_horizon` so repeated trials
/// stay O(checkpoints)). `state` may be the engine's real network state or a
/// worker's shard-local projection — the caches passed in must shadow the
/// two affected link directions of that same state.
bool cached_candidate_test(NetworkState& state,
                           edf::LinkScanCache& uplink_cache,
                           edf::LinkScanCache& downlink_cache,
                           AdmissionStats& stats, const ChannelSpec& spec,
                           ChannelId id, const DeadlinePartition& partition,
                           RejectReason& reason, std::string& detail);

/// Batch pre-pass for one link direction: sizes the cache's checkpoint grid
/// once for all of `batch_specs` (busy-period fixed point of set ∪ batch,
/// capped by the running-lcm hyperperiod), so per-request trials never
/// extend it piecemeal. `set` is the link's current task set; a no-op when
/// the aggregate diverges or overflows (lazy extension covers it).
void reserve_link_horizon(const edf::TaskSet& set, edf::LinkScanCache& cache,
                          const std::vector<ChannelSpec>& batch_specs);

/// Registry/ID/stat bookkeeping shared by every release path: removes the
/// channel from `state`, frees its ID and counts the release. Returns the
/// removed channel, or nullopt when `id` is unknown (nothing mutated).
/// Cache maintenance is the caller's job (the reference controller has no
/// caches; the engines pair this with `downdate_link_cache` per affected
/// link direction).
[[nodiscard]] std::optional<RtChannel> release_channel(NetworkState& state,
                                                       ChannelIdAllocator& ids,
                                                       AdmissionStats& stats,
                                                       ChannelId id);

/// Cache maintenance for one link direction after `removed` left `set`
/// (`set` is the post-removal task set): kDowndate subtracts the task's
/// memoized contribution in O(points); kRebuild is the release-as-invalidate
/// baseline (cold reset). Shared by the batched/parallel engines and the
/// multihop controller so every release path shrinks its caches the same
/// way.
void downdate_link_cache(edf::LinkScanCache& cache, const edf::TaskSet& set,
                         const edf::PseudoTask& removed, ReleasePolicy policy);

/// "channel <id> is not live" — the shared teardown-of-unknown-ID
/// diagnostic; every release path must reject with exactly this string.
[[nodiscard]] std::string unknown_channel_detail(ChannelId id);

/// Folds a release verdict into the typed outcome every release path
/// returns: the released ID on success, `kUnknownChannel` otherwise.
[[nodiscard]] ReleaseOutcome make_release_outcome(bool released, ChannelId id);

// ---------------------------------------------------------------------------
// Link-conflict partitioning primitives, shared by the fork-join parallel
// engine and the resident admission service. A channel occupies exactly two
// link directions (source uplink, destination downlink); components of the
// conflict graph over those keys can be admitted independently.

/// Dense key for one link direction.
[[nodiscard]] inline std::size_t link_key(NodeId node, LinkDirection dir) {
  return std::size_t{node.value()} * 2 +
         (dir == LinkDirection::kUplink ? 0 : 1);
}

[[nodiscard]] inline NodeId key_node(std::size_t key) {
  return NodeId{static_cast<NodeId::rep_type>(key / 2)};
}

[[nodiscard]] inline LinkDirection key_direction(std::size_t key) {
  return key % 2 == 0 ? LinkDirection::kUplink : LinkDirection::kDownlink;
}

/// Union-find over link-direction keys (path halving + union by size).
class LinkUnionFind {
 public:
  explicit LinkUnionFind(std::size_t keys)
      : parent_(keys), size_(keys, 1) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  [[nodiscard]] std::uint32_t find(std::size_t key) {
    auto k = static_cast<std::uint32_t>(key);
    while (parent_[k] != k) {
      parent_[k] = parent_[parent_[k]];  // path halving
      k = parent_[k];
    }
    return k;
  }

  /// Unites the two components; returns the surviving root (the larger
  /// component's — callers migrating per-component state move the smaller
  /// side). No-op returning the common root when already united.
  std::uint32_t unite(std::size_t a, std::size_t b) {
    std::uint32_t ra = find(a);
    std::uint32_t rb = find(b);
    if (ra == rb) {
      return ra;
    }
    if (size_[ra] < size_[rb]) {
      std::swap(ra, rb);
    }
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    return ra;
  }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
};

}  // namespace rtether::core::admission_internal
