#include "edf/task_set.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rtether::edf {

TaskSet::TaskSet(std::span<const PseudoTask> tasks) {
  for (const auto& task : tasks) {
    add(task);
  }
}

void TaskSet::add(const PseudoTask& task) {
  RTETHER_ASSERT_MSG(task.valid(), "invalid pseudo-task");
  RTETHER_ASSERT_MSG(!contains(task.channel),
                     "channel already has a task on this link direction");
  tasks_.push_back(task);
  utilization_ += static_cast<double>(task.capacity) /
                  static_cast<double>(task.period);
  total_capacity_ += task.capacity;
}

bool TaskSet::remove(ChannelId channel) {
  const auto it =
      std::find_if(tasks_.begin(), tasks_.end(),
                   [&](const PseudoTask& t) { return t.channel == channel; });
  if (it == tasks_.end()) {
    return false;
  }
  total_capacity_ -= it->capacity;
  tasks_.erase(it);
  // Re-sum rather than subtract: x + u − u is not always x in IEEE doubles,
  // and the batch pipeline's reports must match a controller whose set has
  // churned through tentative add/remove cycles bit for bit. A left-to-right
  // re-sum equals the incremental accumulation over the same vector exactly.
  utilization_ = 0.0;
  for (const auto& t : tasks_) {
    utilization_ += static_cast<double>(t.capacity) /
                    static_cast<double>(t.period);
  }
  return true;
}

bool TaskSet::contains(ChannelId channel) const {
  return std::any_of(tasks_.begin(), tasks_.end(), [&](const PseudoTask& t) {
    return t.channel == channel;
  });
}

bool TaskSet::all_implicit_deadline() const {
  return std::all_of(tasks_.begin(), tasks_.end(), [](const PseudoTask& t) {
    return t.deadline == t.period;
  });
}

Slot TaskSet::max_deadline() const {
  Slot best = 0;
  for (const auto& t : tasks_) {
    best = std::max(best, t.deadline);
  }
  return best;
}

Slot TaskSet::min_deadline() const {
  if (tasks_.empty()) return 0;
  Slot best = tasks_.front().deadline;
  for (const auto& t : tasks_) {
    best = std::min(best, t.deadline);
  }
  return best;
}

}  // namespace rtether::edf
