#include "net/address.hpp"

#include <cstdio>

#include "common/assert.hpp"

namespace rtether::net {

namespace {

std::optional<unsigned> parse_hex_octet(std::string_view text) {
  if (text.size() != 2) return std::nullopt;
  unsigned value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<unsigned>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<unsigned>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<unsigned>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
  }
  return value;
}

}  // namespace

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  if (text.size() != 17) return std::nullopt;
  std::array<std::uint8_t, 6> octets{};
  for (std::size_t i = 0; i < 6; ++i) {
    const std::size_t offset = i * 3;
    if (i > 0 && text[offset - 1] != ':') return std::nullopt;
    const auto octet = parse_hex_octet(text.substr(offset, 2));
    if (!octet) return std::nullopt;
    octets[i] = static_cast<std::uint8_t>(*octet);
  }
  return MacAddress(octets);
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

MacAddress broadcast_mac() { return MacAddress::from_u48(0xffff'ffff'ffffULL); }

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::array<std::uint32_t, 4> parts{};
  std::size_t part = 0;
  std::size_t digits = 0;
  for (const char c : text) {
    if (c == '.') {
      if (digits == 0 || part == 3) return std::nullopt;
      ++part;
      digits = 0;
    } else if (c >= '0' && c <= '9') {
      parts[part] = parts[part] * 10 + static_cast<std::uint32_t>(c - '0');
      if (parts[part] > 255) return std::nullopt;
      ++digits;
      if (digits > 3) return std::nullopt;
    } else {
      return std::nullopt;
    }
  }
  if (part != 3 || digits == 0) return std::nullopt;
  return Ipv4Address(static_cast<std::uint8_t>(parts[0]),
                     static_cast<std::uint8_t>(parts[1]),
                     static_cast<std::uint8_t>(parts[2]),
                     static_cast<std::uint8_t>(parts[3]));
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", value_ >> 24 & 0xff,
                value_ >> 16 & 0xff, value_ >> 8 & 0xff, value_ & 0xff);
  return buf;
}

}  // namespace rtether::net
