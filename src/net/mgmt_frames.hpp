#pragma once

/// @file mgmt_frames.hpp
/// RT-channel management frames: the connection RequestFrame of paper
/// Fig 18.3 and the ResponseFrame of Fig 18.4, plus the teardown pair the
/// paper implies ("the network has capability to add RT channels
/// dynamically") but does not draw.
///
/// Field widths follow the figures exactly: 32-bit T_period / C /
/// T_deadline, 16-bit RT channel ID, 8-bit connection request ID, 1-bit
/// response verdict (carried in the low bit of one octet — the figures count
/// bits, the wire counts bytes). The Ethernet destination (request) and
/// source (response) being "= switch addr." lives in the Ethernet header,
/// not the payload.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "net/address.hpp"

namespace rtether::net {

/// First payload octet of every management frame.
enum class MgmtFrameType : std::uint8_t {
  kConnectRequest = 1,
  kConnectResponse = 2,
  kTeardownRequest = 3,
  kTeardownResponse = 4,
};

/// Peeks at the type octet without consuming the buffer.
[[nodiscard]] std::optional<MgmtFrameType> peek_mgmt_type(
    std::span<const std::uint8_t> payload);

/// Fig 18.3 — sent by the source node to the switch; if admitted, forwarded
/// (with the RT channel ID filled in) to the destination node.
struct RequestFrame {
  /// Source-node-unique ID to match responses to outstanding requests.
  ConnectionRequestId connection_request;
  /// Network-unique ID; only valid after the switch assigns it.
  ChannelId rt_channel;
  MacAddress source_mac;
  MacAddress destination_mac;
  Ipv4Address source_ip;
  Ipv4Address destination_ip;
  /// {P_i, C_i, d_i} in maximal-frame slots (32-bit fields per Fig 18.3).
  std::uint32_t period{0};
  std::uint32_t capacity{0};
  std::uint32_t deadline{0};

  static constexpr std::size_t kWireSize = 36;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static std::optional<RequestFrame> parse(
      std::span<const std::uint8_t> payload);

  friend bool operator==(const RequestFrame&, const RequestFrame&) = default;
};

/// Fig 18.4 — the verdict, relayed destination→switch→source (or emitted by
/// the switch itself on rejection).
///
/// Protocol completion (documented in DESIGN.md): the figure's format has no
/// field through which the source node can learn the uplink deadline d_iu
/// the switch's DPS assigned, yet §18.3.1 requires the source to run EDF
/// with exactly that deadline — and under ADPS only the switch can compute
/// it. We therefore append a 32-bit d_iu field, filled by the switch when
/// relaying an accepting response (0 on rejection).
struct ResponseFrame {
  ConnectionRequestId connection_request;
  ChannelId rt_channel;
  /// 1 = OK, 0 = Not OK (1-bit field in the figure).
  bool accepted{false};
  /// d_iu in slots (see above; not part of the paper's Fig 18.4).
  std::uint32_t uplink_deadline{0};

  static constexpr std::size_t kWireSize = 9;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static std::optional<ResponseFrame> parse(
      std::span<const std::uint8_t> payload);

  friend bool operator==(const ResponseFrame&,
                         const ResponseFrame&) = default;
};

/// Teardown request (extension): releases an established channel so its
/// capacity returns to the admission pool.
struct TeardownFrame {
  ChannelId rt_channel;
  /// Distinguishes request from acknowledgment.
  bool is_ack{false};

  static constexpr std::size_t kWireSize = 4;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static std::optional<TeardownFrame> parse(
      std::span<const std::uint8_t> payload);

  friend bool operator==(const TeardownFrame&,
                         const TeardownFrame&) = default;
};

}  // namespace rtether::net
