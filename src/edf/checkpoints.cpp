#include "edf/checkpoints.hpp"

#include <algorithm>

#include "common/math.hpp"

namespace rtether::edf {

std::vector<Slot> checkpoints(const TaskSet& set, Slot bound) {
  std::vector<Slot> points;
  for (const auto& task : set.tasks()) {
    for (Slot t = task.deadline; t <= bound; t += task.period) {
      if (t >= 1) {
        points.push_back(t);
      }
      // Guard wrap-around for enormous periods near the Slot range end.
      if (bound - t < task.period) {
        break;
      }
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return points;
}

std::uint64_t checkpoint_count_upper_bound(const TaskSet& set, Slot bound) {
  std::uint64_t count = 0;
  for (const auto& task : set.tasks()) {
    if (task.deadline > bound) {
      continue;
    }
    count += 1 + (bound - task.deadline) / task.period;
  }
  return count;
}

}  // namespace rtether::edf
