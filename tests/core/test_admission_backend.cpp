/// Contract tests for the unified `AdmissionBackend` front door: every
/// factory kind must produce bit-identical outcomes to the reference
/// `AdmissionController` on the same op stream, the async surface must work
/// ticket-first on synchronous and resident kinds alike, and unknown kinds
/// must fail loudly (nullptr), not fall back silently.

#include "core/admission_backend.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hpp"
#include "core/admission.hpp"
#include "core/partitioner.hpp"

namespace rtether::core {
namespace {

ChannelSpec spec(std::uint32_t src, std::uint32_t dst, Slot p, Slot c,
                 Slot d) {
  return ChannelSpec{NodeId{src}, NodeId{dst}, p, c, d};
}

ChannelSpec random_spec(Rng& rng, std::uint32_t nodes) {
  static constexpr Slot kPeriods[] = {60, 80, 100, 150, 200, 300};
  const auto src = static_cast<std::uint32_t>(rng.index(nodes));
  auto dst = static_cast<std::uint32_t>(rng.index(nodes));
  if (dst == src) {
    dst = (dst + 1) % nodes;
  }
  const Slot period = kPeriods[rng.index(std::size(kPeriods))];
  const Slot capacity = 1 + rng.index(3);
  Slot deadline;
  if (rng.index(16) == 0) {
    deadline = rng.index(2 * capacity);  // violates d >= 2C
  } else {
    deadline = 2 * capacity + rng.index(period - 2 * capacity + 1);
  }
  return spec(src, dst, period, capacity, deadline);
}

/// Oracle-driven churn stream whose release targets are the IDs the
/// sequential controller assigns — replayable through any backend.
std::vector<ChannelOp> churn_stream(std::uint64_t seed, std::size_t count,
                                    std::uint32_t nodes) {
  Rng rng(seed);
  AdmissionController oracle(nodes, make_partitioner("SDPS"));
  std::vector<ChannelId> live;
  std::vector<ChannelOp> ops;
  ops.reserve(count);
  while (ops.size() < count) {
    if (!live.empty() && rng.index(3) == 0) {
      const auto victim = rng.index(live.size());
      const ChannelId id = live[victim];
      live[victim] = live.back();
      live.pop_back();
      ops.push_back(ChannelOp::release(id));
      EXPECT_TRUE(oracle.release(id));
      continue;
    }
    const ChannelSpec request = random_spec(rng, nodes);
    ops.push_back(ChannelOp::admit(request));
    if (const auto outcome = oracle.request(request)) {
      live.push_back(outcome->id);
    }
  }
  return ops;
}

std::unique_ptr<AdmissionBackend> make(std::string_view kind,
                                       std::uint32_t nodes) {
  BackendConfig config;
  config.threads = 2;
  config.min_parallel_batch = 2;
  return make_admission_backend(kind, nodes, make_partitioner("SDPS"),
                                config);
}

TEST(AdmissionBackend, FactoryKnowsEveryAdvertisedKind) {
  const auto kinds = backend_kinds();
  ASSERT_EQ(kinds.size(), 4u);
  for (const auto kind : kinds) {
    auto backend = make(kind, 4);
    ASSERT_NE(backend, nullptr) << kind;
    EXPECT_EQ(backend->name(), kind);
  }
}

TEST(AdmissionBackend, UnknownKindReturnsNull) {
  EXPECT_EQ(make("turbo", 4), nullptr);
  EXPECT_EQ(make("", 4), nullptr);
}

TEST(AdmissionBackend, EveryKindMatchesTheControllerOnChurn) {
  const std::uint32_t nodes = 12;
  const auto ops = churn_stream(0x5eed, 500, nodes);
  AdmissionController oracle(nodes, make_partitioner("SDPS"));
  ChurnResult want;
  for (const ChannelOp& op : ops) {
    if (op.kind == ChannelOp::Kind::kAdmit) {
      want.admissions.push_back(oracle.request(op.spec));
    } else {
      want.releases.push_back(oracle.release(op.id));
    }
  }
  const auto reference = oracle.state().channels();

  for (const auto kind : backend_kinds()) {
    auto backend = make(kind, nodes);
    ASSERT_NE(backend, nullptr);
    const ChurnResult got = backend->submit(ops);

    ASSERT_EQ(got.admissions.size(), want.admissions.size()) << kind;
    for (std::size_t i = 0; i < want.admissions.size(); ++i) {
      const auto& a = got.admissions[i];
      const auto& b = want.admissions[i];
      ASSERT_EQ(a.has_value(), b.has_value()) << kind << " admit " << i;
      if (b.has_value()) {
        EXPECT_EQ(*a, *b) << kind << " admit " << i;
      } else {
        EXPECT_EQ(a.error(), b.error()) << kind << " admit " << i;
      }
    }
    ASSERT_EQ(got.releases.size(), want.releases.size()) << kind;
    for (std::size_t i = 0; i < want.releases.size(); ++i) {
      const auto& a = got.releases[i];
      const auto& b = want.releases[i];
      ASSERT_EQ(a.has_value(), b.has_value()) << kind << " release " << i;
      if (b.has_value()) {
        EXPECT_EQ(*a, *b) << kind << " release " << i;
      } else {
        EXPECT_EQ(a.error(), b.error()) << kind << " release " << i;
      }
    }

    const AdmissionStats& stats = backend->stats();
    EXPECT_EQ(stats.requested, oracle.stats().requested) << kind;
    EXPECT_EQ(stats.accepted, oracle.stats().accepted) << kind;
    EXPECT_EQ(stats.rejected, oracle.stats().rejected) << kind;
    EXPECT_EQ(stats.released, oracle.stats().released) << kind;
    EXPECT_EQ(stats.feasibility_tests, oracle.stats().feasibility_tests)
        << kind;
    EXPECT_EQ(stats.demand_evaluations, oracle.stats().demand_evaluations)
        << kind;

    auto mine = backend->state().channels();
    auto theirs = reference;
    auto by_id = [](const RtChannel& a, const RtChannel& b) {
      return a.id < b.id;
    };
    std::sort(mine.begin(), mine.end(), by_id);
    std::sort(theirs.begin(), theirs.end(), by_id);
    EXPECT_EQ(mine, theirs) << kind;
  }
}

TEST(AdmissionBackend, TypedUnknownReleaseMatchesAcrossKinds) {
  AdmissionController oracle(4, make_partitioner("SDPS"));
  const ReleaseOutcome want = oracle.release(ChannelId{42});
  ASSERT_FALSE(want.has_value());
  for (const auto kind : backend_kinds()) {
    auto backend = make(kind, 4);
    const ReleaseOutcome got = backend->release(ChannelId{42});
    ASSERT_FALSE(got.has_value()) << kind;
    EXPECT_EQ(got.error(), want.error()) << kind;
  }
}

TEST(AdmissionBackend, AsyncSurfaceWorksTicketFirstEverywhere) {
  for (const auto kind : backend_kinds()) {
    auto backend = make(kind, 4);
    ASSERT_NE(backend, nullptr);
    // The resident service completes tickets concurrently; every other
    // kind emulates with pre-completed tickets.
    EXPECT_EQ(backend->supports_async(), kind == "service") << kind;

    Ticket admit =
        backend->submit_async(ChannelOp::admit(spec(0, 1, 100, 2, 40)));
    ASSERT_TRUE(admit.valid()) << kind;
    admit.wait();
    ASSERT_TRUE(admit.done()) << kind;
    ASSERT_EQ(admit.kind(), ChannelOp::Kind::kAdmit) << kind;
    ASSERT_TRUE(admit.admit_outcome().has_value()) << kind;
    const ChannelId id = admit.admit_outcome()->id;

    Ticket release = backend->submit_async(ChannelOp::release(id));
    release.wait();
    ASSERT_TRUE(release.done()) << kind;
    ASSERT_EQ(release.kind(), ChannelOp::Kind::kRelease) << kind;
    ASSERT_TRUE(release.release_outcome().has_value()) << kind;
    EXPECT_EQ(*release.release_outcome(), id) << kind;

    backend->drain();
    EXPECT_EQ(backend->state().channel_count(), 0u) << kind;
    EXPECT_EQ(backend->stats().released, 1u) << kind;
  }
}

TEST(AdmissionBackend, SynchronousBackendsReturnPreCompletedTickets) {
  auto backend = make("controller", 4);
  const Ticket ticket =
      backend->submit_async(ChannelOp::admit(spec(0, 1, 100, 2, 40)));
  // Done without wait(): the default emulation executes inline.
  EXPECT_TRUE(ticket.done());
  EXPECT_TRUE(ticket.admit_outcome().has_value());
}

TEST(AdmissionBackend, DefaultTicketIsInvalid) {
  const Ticket ticket;
  EXPECT_FALSE(ticket.valid());
}

}  // namespace
}  // namespace rtether::core
