#include "core/multihop.hpp"

#include <algorithm>
#include <numeric>
#include <optional>

#include "common/assert.hpp"
#include "common/math.hpp"
#include "core/admission_internal.hpp"

namespace rtether::core {

bool MultihopChannel::partition_valid() const {
  if (path.empty() || path.size() != deadlines.size()) {
    return false;
  }
  Slot sum = 0;
  for (const Slot d : deadlines) {
    if (d < spec.capacity) return false;  // Eq 18.9 per hop
    sum += d;
  }
  return sum == spec.deadline;  // Eq 18.8
}

PathNetworkState::PathNetworkState(Topology topology)
    : topology_(std::move(topology)) {}

const edf::TaskSet& PathNetworkState::link(const LinkId& id) const {
  static const edf::TaskSet kEmpty;
  const auto it = links_.find(id);
  return it == links_.end() ? kEmpty : it->second;
}

void PathNetworkState::add_channel(const MultihopChannel& channel) {
  RTETHER_ASSERT_MSG(channel.partition_valid(),
                     "multi-hop partition violates generalized Eq 18.8/18.9");
  RTETHER_ASSERT_MSG(!channels_.contains(channel.id),
                     "duplicate RT channel ID");
  for (std::size_t hop = 0; hop < channel.path.size(); ++hop) {
    links_[channel.path[hop]].add({channel.id, channel.spec.period,
                                   channel.spec.capacity,
                                   channel.deadlines[hop]});
  }
  channels_.emplace(channel.id, channel);
}

bool PathNetworkState::remove_channel(ChannelId id) {
  const auto it = channels_.find(id);
  if (it == channels_.end()) {
    return false;
  }
  for (const auto& link : it->second.path) {
    const bool removed = links_[link].remove(id);
    RTETHER_ASSERT_MSG(removed, "channel registry out of sync");
  }
  channels_.erase(it);
  return true;
}

std::optional<MultihopChannel> PathNetworkState::find_channel(
    ChannelId id) const {
  const auto it = channels_.find(id);
  if (it == channels_.end()) return std::nullopt;
  return it->second;
}

std::vector<Slot> PathPartitioner::apportion(
    Slot deadline, Slot capacity, const std::vector<double>& weights) {
  const auto hops = weights.size();
  RTETHER_ASSERT(hops >= 1);
  RTETHER_ASSERT_MSG(deadline >= capacity * hops,
                     "deadline below k*C cannot be apportioned");
  const Slot surplus = deadline - capacity * hops;

  double weight_sum = 0.0;
  for (const double w : weights) {
    RTETHER_ASSERT(w >= 0.0);
    weight_sum += w;
  }

  // Base share C per hop; surplus by largest remainder over weights.
  std::vector<Slot> budgets(hops, capacity);
  if (surplus == 0) {
    return budgets;
  }
  // Even spread, leftovers to the front hops: the degenerate-weights split
  // and the fallback when double rounding breaks the weighted one.
  auto even_spread = [&] {
    std::vector<Slot> even(hops, capacity);
    const Slot each = surplus / hops;
    Slot leftover = surplus % hops;
    for (auto& b : even) {
      b += each + (leftover > 0 ? 1 : 0);
      if (leftover > 0) --leftover;
    }
    return even;
  };
  if (weight_sum <= 0.0) {
    return even_spread();
  }

  // Beyond 2⁵³ the weighted shares are computed in ulp > 1 doubles: the
  // cast below would be UB at exact ≥ 2⁶⁴ and the assigned sum could
  // over-run the surplus and wrap the leftover loop into ~2⁶⁴ iterations.
  // The even spread is deterministic, exact and still Eq 18.8/18.9 valid —
  // unreachable for realistic deadlines.
  constexpr double kSlotRange = 18446744073709551616.0;  // 2⁶⁴
  std::vector<double> remainders(hops);
  Slot assigned = 0;
  for (std::size_t i = 0; i < hops; ++i) {
    const double exact =
        static_cast<double>(surplus) * weights[i] / weight_sum;
    if (!(exact < kSlotRange)) {
      return even_spread();
    }
    const Slot whole = static_cast<Slot>(exact);
    const auto sum = checked_add(assigned, whole);
    if (!sum || *sum > surplus) {
      return even_spread();
    }
    budgets[i] += whole;
    assigned = *sum;
    remainders[i] = exact - static_cast<double>(whole);
  }
  // Distribute the remaining slots to the largest remainders (stable by
  // index on ties, so the result is deterministic).
  std::vector<std::size_t> order(hops);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t lhs, std::size_t rhs) {
                     return remainders[lhs] > remainders[rhs];
                   });
  Slot leftover = surplus - assigned;
  for (std::size_t i = 0; leftover > 0; i = (i + 1) % hops, --leftover) {
    budgets[order[i]] += 1;
  }
  return budgets;
}

std::vector<Slot> SymmetricPathPartitioner::split(
    const ChannelSpec& spec, const std::vector<LinkId>& path,
    const PathNetworkState& /*state*/) const {
  return apportion(spec.deadline, spec.capacity,
                   std::vector<double>(path.size(), 1.0));
}

std::vector<Slot> AsymmetricPathPartitioner::split(
    const ChannelSpec& spec, const std::vector<LinkId>& path,
    const PathNetworkState& state) const {
  std::vector<double> weights;
  weights.reserve(path.size());
  for (const auto& link : path) {
    weights.push_back(static_cast<double>(state.link_load(link) + 1));
  }
  return apportion(spec.deadline, spec.capacity, weights);
}

std::unique_ptr<PathPartitioner> make_path_partitioner(
    const std::string& name) {
  if (name == "SDPS") return std::make_unique<SymmetricPathPartitioner>();
  if (name == "ADPS") return std::make_unique<AsymmetricPathPartitioner>();
  RTETHER_ASSERT_MSG(false, "unknown path partitioner name");
  return nullptr;
}

PathAdmissionController::PathAdmissionController(
    Topology topology, std::unique_ptr<PathPartitioner> partitioner,
    AdmissionConfig config)
    : state_(std::move(topology)),
      partitioner_(std::move(partitioner)),
      config_(config) {
  RTETHER_ASSERT_MSG(partitioner_ != nullptr, "admission requires a DPS");
}

Expected<MultihopChannel, Rejection> PathAdmissionController::request(
    const ChannelSpec& spec) {
  ++stats_.requested;
  auto reject = [&](RejectReason reason,
                    std::string detail) -> Expected<MultihopChannel,
                                                    Rejection> {
    ++stats_.rejected;
    return Unexpected(Rejection{reason, std::move(detail)});
  };

  // Structural validity minus the 2C rule, which generalizes per path.
  if (spec.period == 0 || spec.capacity == 0 ||
      spec.capacity > spec.period || spec.deadline == 0) {
    return reject(RejectReason::kInvalidSpec, spec.to_string());
  }
  if (!state_.topology().attachment(spec.source) ||
      !state_.topology().attachment(spec.destination)) {
    return reject(RejectReason::kUnknownNode, spec.to_string());
  }
  const auto path = state_.topology().route(spec.source, spec.destination);
  if (!path) {
    return reject(RejectReason::kUnknownNode,
                  spec.to_string() + " (no route)");
  }
  // k·C with checked arithmetic: a near-2⁶⁴ capacity must fail the gate,
  // not wrap past it and trip the apportionment assert downstream.
  const auto path_floor = checked_mul(spec.capacity, path->size());
  if (!path_floor || spec.deadline < *path_floor) {
    return reject(RejectReason::kInvalidSpec,
                  spec.to_string() + " (d < k*C over a " +
                      std::to_string(path->size()) + "-hop path)");
  }

  const auto id = ids_.allocate();
  if (!id) {
    return reject(RejectReason::kChannelIdsExhausted, spec.to_string());
  }

  MultihopChannel channel;
  channel.id = *id;
  channel.spec = spec;
  channel.path = *path;
  channel.deadlines = partitioner_->split(spec, *path, state_);
  RTETHER_ASSERT_MSG(channel.partition_valid(),
                     "path partitioner produced an invalid split");

  auto hop_reject = [&](std::size_t hop, const edf::FeasibilityReport& report)
      -> Expected<MultihopChannel, Rejection> {
    ids_.release(*id);
    const bool is_uplink = channel.path[hop].kind == LinkId::Kind::kUplink;
    return reject(is_uplink ? RejectReason::kUplinkInfeasible
                            : RejectReason::kDownlinkInfeasible,
                  channel.path[hop].to_string() + ": " + report.summary());
  };

  if (config_.scan == edf::DemandScan::kCheckpoints) {
    // Cached trials: hop h tests link_h ∪ {task_h} by a merge-walk against
    // its scan cache — verdicts and diagnostics bit-identical to the
    // from-scratch reference below, O(checkpoints) per hop instead of
    // O(tasks · checkpoints). Nothing is installed until every hop passes,
    // so rejection leaves no residue by construction.
    std::vector<edf::FeasibilityReport> reports;
    reports.reserve(channel.path.size());
    for (std::size_t hop = 0; hop < channel.path.size(); ++hop) {
      const edf::TaskSet& set = state_.link(channel.path[hop]);
      edf::LinkScanCache& cache = caches_[channel.path[hop]];
      const edf::PseudoTask task{*id, spec.period, spec.capacity,
                                 channel.deadlines[hop]};
      ++stats_.feasibility_tests;
      const auto report = cache.check_with(set, task);
      stats_.demand_evaluations += report.demand_evaluations;
      if (report.scanned_bound > cache.horizon()) {
        cache.reserve_horizon(set, report.scanned_bound);
      }
      if (!report.feasible) {
        return hop_reject(hop, report);
      }
      reports.push_back(report);
    }
    state_.add_channel(channel);
    for (std::size_t hop = 0; hop < channel.path.size(); ++hop) {
      caches_[channel.path[hop]].commit(
          {*id, spec.period, spec.capacity, channel.deadlines[hop]},
          reports[hop].used_utilization_fast_path
              ? std::nullopt
              : std::optional<Slot>(reports[hop].scanned_bound));
    }
    ++stats_.accepted;
    return channel;
  }

  // Reference path (non-checkpoint scans): tentatively install, test every
  // hop from scratch, roll back on failure.
  state_.add_channel(channel);
  for (std::size_t hop = 0; hop < channel.path.size(); ++hop) {
    ++stats_.feasibility_tests;
    const auto report =
        edf::check_feasibility(state_.link(channel.path[hop]), config_.scan);
    stats_.demand_evaluations += report.demand_evaluations;
    if (!report.feasible) {
      state_.remove_channel(*id);
      return hop_reject(hop, report);
    }
  }
  ++stats_.accepted;
  return channel;
}

ReleaseOutcome PathAdmissionController::release(ChannelId id) {
  const auto channel = state_.find_channel(id);
  if (!channel) {
    return admission_internal::make_release_outcome(false, id);
  }
  const bool removed = state_.remove_channel(id);
  RTETHER_ASSERT_MSG(removed, "channel registry out of sync");
  const bool was_live = ids_.release(id);
  RTETHER_ASSERT_MSG(was_live, "channel present but ID not live");
  ++stats_.released;
  if (config_.scan == edf::DemandScan::kCheckpoints) {
    // k-hop release fast path: every traversed link's cache sheds this
    // channel's pseudo-task via the shared downdate helper.
    for (std::size_t hop = 0; hop < channel->path.size(); ++hop) {
      admission_internal::downdate_link_cache(
          caches_[channel->path[hop]], state_.link(channel->path[hop]),
          {id, channel->spec.period, channel->spec.capacity,
           channel->deadlines[hop]},
          config_.release);
    }
  }
  return id;
}

}  // namespace rtether::core
