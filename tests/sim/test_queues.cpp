#include "sim/queues.hpp"

#include <gtest/gtest.h>

namespace rtether::sim {
namespace {

// The queues hold FrameIndex handles, not frames: identity is the index.

TEST(EdfQueue, PopsEarliestDeadlineFirst) {
  EdfQueue q;
  q.push(300, FrameIndex{1});
  q.push(100, FrameIndex{2});
  q.push(200, FrameIndex{3});
  EXPECT_EQ(q.pop(), 2u);
  EXPECT_EQ(q.pop(), 3u);
  EXPECT_EQ(q.pop(), 1u);
  EXPECT_EQ(q.pop(), kNoFrame);
}

TEST(EdfQueue, TiesBreakFifo) {
  EdfQueue q;
  for (std::uint32_t i = 1; i <= 20; ++i) {
    q.push(42, FrameIndex{i});
  }
  for (std::uint32_t i = 1; i <= 20; ++i) {
    EXPECT_EQ(q.pop(), i);
  }
}

TEST(EdfQueue, SingleMoveOutPop) {
  // The dequeue contract: one pop() call both selects and removes the EDF
  // minimum (no peek-then-pop double heap walk).
  EdfQueue q;
  q.push(7, FrameIndex{1});
  EXPECT_EQ(q.size(), 1u);
  q.push(3, FrameIndex{2});
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(), 2u);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop(), 1u);
  EXPECT_TRUE(q.empty());
}

TEST(EdfQueue, InterleavedPushPop) {
  EdfQueue q;
  q.push(10, FrameIndex{1});
  q.push(5, FrameIndex{2});
  EXPECT_EQ(q.pop(), 2u);
  q.push(1, FrameIndex{3});
  EXPECT_EQ(q.pop(), 3u);
  EXPECT_EQ(q.pop(), 1u);
  EXPECT_TRUE(q.empty());
}

TEST(EdfQueue, HeapOrderSurvivesChurn) {
  // Randomized-ish mixed load on the manual heap: drain order must be
  // (deadline, FIFO-within-deadline) regardless of interleaving.
  EdfQueue q;
  const Tick deadlines[] = {9, 2, 7, 2, 5, 9, 1, 7, 2, 5};
  for (std::uint32_t i = 0; i < 10; ++i) {
    q.push(deadlines[i], FrameIndex{i});
  }
  // Expected: sort by (deadline, push order).
  const FrameIndex expected[] = {6, 1, 3, 8, 4, 9, 2, 7, 0, 5};
  for (const FrameIndex want : expected) {
    EXPECT_EQ(q.pop(), want);
  }
  EXPECT_EQ(q.pop(), kNoFrame);
}

TEST(FcfsQueue, FifoOrder) {
  FcfsQueue q;
  for (std::uint32_t i = 1; i <= 5; ++i) {
    EXPECT_TRUE(q.push(FrameIndex{i}));
  }
  for (std::uint32_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(q.pop(), i);
  }
  EXPECT_EQ(q.pop(), kNoFrame);
}

TEST(FcfsQueue, UnboundedByDefault) {
  FcfsQueue q;
  for (std::uint32_t i = 0; i < 10'000; ++i) {
    EXPECT_TRUE(q.push(FrameIndex{i}));
  }
  EXPECT_EQ(q.size(), 10'000u);
  EXPECT_EQ(q.dropped(), 0u);
}

TEST(FcfsQueue, BoundedDropsTail) {
  FcfsQueue q(3);
  EXPECT_TRUE(q.push(FrameIndex{1}));
  EXPECT_TRUE(q.push(FrameIndex{2}));
  EXPECT_TRUE(q.push(FrameIndex{3}));
  EXPECT_FALSE(q.push(FrameIndex{4}));
  EXPECT_EQ(q.dropped(), 1u);
  EXPECT_EQ(q.size(), 3u);
  // Head unaffected; popping frees a slot.
  EXPECT_EQ(q.pop(), 1u);
  EXPECT_TRUE(q.push(FrameIndex{5}));
}

TEST(FcfsQueue, RingWrapKeepsFifoOrder) {
  // Cycle the ring through many grow/wrap boundaries: order must hold and
  // no element may be lost (the ring replaced std::deque to keep the
  // steady state allocation-free).
  FcfsQueue q;
  std::uint32_t next_push = 0;
  std::uint32_t next_pop = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 7; ++i) {
      EXPECT_TRUE(q.push(FrameIndex{next_push++}));
    }
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(q.pop(), next_pop++);
    }
  }
  while (next_pop < next_push) {
    EXPECT_EQ(q.pop(), next_pop++);
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace rtether::sim
