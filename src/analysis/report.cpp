#include "analysis/report.hpp"

#include <algorithm>
#include <cstdio>

#include "common/ascii_plot.hpp"
#include "common/assert.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

namespace rtether::analysis {

void print_acceptance_report(const std::string& title,
                             const std::vector<AcceptanceCurve>& curves) {
  RTETHER_ASSERT(!curves.empty());

  ConsoleTable table(title);
  std::vector<std::string> header{"requested"};
  for (const auto& curve : curves) {
    header.push_back(curve.scheme + " (mean)");
    header.push_back(curve.scheme + " (min..max)");
  }
  table.set_header(std::move(header));

  const std::size_t rows = curves.front().points.size();
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    row.push_back(std::to_string(curves.front().points[r].requested));
    for (const auto& curve : curves) {
      RTETHER_ASSERT(curve.points.size() == rows);
      const auto& p = curve.points[r];
      char mean[32];
      std::snprintf(mean, sizeof mean, "%.1f", p.accepted_mean);
      row.emplace_back(mean);
      row.push_back(std::to_string(static_cast<long>(p.accepted_min)) +
                    ".." +
                    std::to_string(static_cast<long>(p.accepted_max)));
    }
    table.add_row(std::move(row));
  }
  table.print();

  AsciiPlot plot(title, "requested channels", "accepted channels");
  for (const auto& curve : curves) {
    PlotSeries series;
    series.name = curve.scheme;
    for (const auto& p : curve.points) {
      series.x.push_back(static_cast<double>(p.requested));
      series.y.push_back(p.accepted_mean);
    }
    plot.add_series(std::move(series));
  }
  plot.print();
}

void write_acceptance_csv(std::ostream& out,
                          const std::vector<AcceptanceCurve>& curves) {
  RTETHER_ASSERT(!curves.empty());
  CsvWriter csv(out);
  std::vector<std::string> header{"requested"};
  for (const auto& curve : curves) {
    header.push_back(curve.scheme);
  }
  csv.write_row(header);
  for (std::size_t r = 0; r < curves.front().points.size(); ++r) {
    std::vector<std::string> row{
        std::to_string(curves.front().points[r].requested)};
    for (const auto& curve : curves) {
      row.push_back(std::to_string(curve.points[r].accepted_mean));
    }
    csv.write_row(row);
  }
}

void print_validation_report(const std::string& title,
                             const ValidationResult& result,
                             std::size_t max_channel_rows) {
  ConsoleTable table(title);
  table.set_header({"channel", "route", "d_i", "sent", "delivered", "misses",
                    "worst delay", "bound", "headroom"});
  // Show the channels closest to their bound first — the interesting ones.
  std::vector<ChannelValidation> sorted = result.channels;
  std::sort(sorted.begin(), sorted.end(),
            [](const ChannelValidation& a, const ChannelValidation& b) {
              return a.worst_delay_slots / a.bound_slots >
                     b.worst_delay_slots / b.bound_slots;
            });
  const std::size_t rows = std::min(max_channel_rows, sorted.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const auto& c = sorted[i];
    char worst[32];
    char bound[32];
    char headroom[32];
    std::snprintf(worst, sizeof worst, "%.2f", c.worst_delay_slots);
    std::snprintf(bound, sizeof bound, "%.2f", c.bound_slots);
    std::snprintf(headroom, sizeof headroom, "%.1f%%",
                  100.0 * (1.0 - c.worst_delay_slots / c.bound_slots));
    // Built up with += rather than operator+ chains: GCC 12's -O3 -Wrestrict
    // misfires on `"literal" + std::to_string(...)` (GCC PR105651).
    std::string route = "n";
    route += std::to_string(c.source.value());
    route += "->n";
    route += std::to_string(c.destination.value());
    table.add_row({"ch" + std::to_string(c.id.value()), route,
                   std::to_string(c.deadline_slots),
                   std::to_string(c.frames_sent),
                   std::to_string(c.frames_delivered),
                   std::to_string(c.deadline_misses), worst, bound,
                   headroom});
  }
  table.print();
  std::printf(
      "channels: %zu/%zu established | frames: %llu sent, %llu delivered | "
      "misses: %llu | worst delay / bound = %.3f → guarantee %s\n\n",
      result.channels_established, result.channels_requested,
      static_cast<unsigned long long>(result.frames_sent),
      static_cast<unsigned long long>(result.frames_delivered),
      static_cast<unsigned long long>(result.deadline_misses),
      result.worst_delay_ratio,
      result.sim_budget_exhausted
          ? "UNVERIFIED (simulation event budget exhausted — partial run)"
          : (result.deadline_misses == 0 ? "HELD" : "VIOLATED"));
}

}  // namespace rtether::analysis
