#include "core/partitioner.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/assert.hpp"

namespace rtether::core {

DeadlinePartition DeadlinePartitioner::partition(
    const ChannelSpec& spec, const NetworkState& state) const {
  const auto list = candidates(spec, state);
  RTETHER_ASSERT_MSG(!list.empty(), "partitioner produced no candidates");
  return list.front();
}

DeadlinePartition DeadlinePartitioner::clamped(Slot uplink_budget,
                                               const ChannelSpec& spec) {
  RTETHER_ASSERT_MSG(spec.valid(), "cannot partition an invalid spec");
  const Slot lo = spec.capacity;
  const Slot hi = spec.deadline - spec.capacity;  // keep d_id ≥ C_i
  const Slot uplink = std::clamp(uplink_budget, lo, hi);
  return DeadlinePartition{uplink, spec.deadline - uplink};
}

std::vector<DeadlinePartition> SymmetricPartitioner::candidates(
    const ChannelSpec& spec, const NetworkState& /*state*/) const {
  // Eq 18.14: d_iu = d_id = d_i/2 — SDPS ignores the system state.
  return {clamped(spec.deadline / 2, spec)};
}

std::vector<DeadlinePartition> AsymmetricPartitioner::candidates(
    const ChannelSpec& spec, const NetworkState& state) const {
  const std::size_t bump = options_.include_requested_channel ? 1 : 0;
  const std::uint64_t load_up =
      state.link_load(spec.source, LinkDirection::kUplink) + bump;
  const std::uint64_t load_down =
      state.link_load(spec.destination, LinkDirection::kDownlink) + bump;
  const std::uint64_t total = load_up + load_down;
  if (total == 0) {
    // Only possible with include_requested_channel = false on idle links;
    // degenerate to the symmetric split.
    return {clamped(spec.deadline / 2, spec)};
  }
  // Eq 18.16: Upart = LL(src) / (LL(src) + LL(dst)); d_iu = Upart · d_i.
  const std::uint64_t numerator = load_up * spec.deadline;
  const Slot uplink = options_.round_to_nearest
                          ? (numerator + total / 2) / total
                          : numerator / total;
  return {clamped(uplink, spec)};
}

std::vector<DeadlinePartition> UtilizationWeightedPartitioner::candidates(
    const ChannelSpec& spec, const NetworkState& state) const {
  // Load weights, not admission decisions — doubles are fine here.
  const double own = spec.utilization();
  const double up =
      state.link(spec.source, LinkDirection::kUplink).utilization() + own;
  const double down =
      state.link(spec.destination, LinkDirection::kDownlink).utilization() +
      own;
  const double total = up + down;
  if (total <= 0.0) {
    return {clamped(spec.deadline / 2, spec)};
  }
  const auto uplink = static_cast<Slot>(
      up / total * static_cast<double>(spec.deadline) + 0.5);
  return {clamped(uplink, spec)};
}

std::vector<DeadlinePartition> SearchPartitioner::candidates(
    const ChannelSpec& spec, const NetworkState& state) const {
  // Anchor at the ADPS proposal, then fan out over every admissible split,
  // nearest first — the admission controller stops at the first feasible.
  const DeadlinePartition anchor =
      AsymmetricPartitioner().partition(spec, state);
  const Slot lo = spec.capacity;
  const Slot hi = spec.deadline - spec.capacity;

  std::vector<DeadlinePartition> result;
  result.reserve(static_cast<std::size_t>(hi - lo + 1));
  result.push_back(anchor);
  for (Slot offset = 1;; ++offset) {
    bool any = false;
    if (anchor.uplink + offset <= hi) {
      result.push_back({anchor.uplink + offset,
                        spec.deadline - (anchor.uplink + offset)});
      any = true;
    }
    if (anchor.uplink >= lo + offset) {
      result.push_back({anchor.uplink - offset,
                        spec.deadline - (anchor.uplink - offset)});
      any = true;
    }
    if (!any) break;
  }
  return result;
}

std::unique_ptr<DeadlinePartitioner> make_partitioner(
    const std::string& name) {
  if (name == "SDPS") return std::make_unique<SymmetricPartitioner>();
  if (name == "ADPS") return std::make_unique<AsymmetricPartitioner>();
  if (name == "UDPS") {
    return std::make_unique<UtilizationWeightedPartitioner>();
  }
  if (name == "Search") return std::make_unique<SearchPartitioner>();
  RTETHER_ASSERT_MSG(false, "unknown partitioner name");
  return nullptr;
}

}  // namespace rtether::core
