#pragma once

/// @file units.hpp
/// Physical-unit helpers tying the abstract "slot" (one maximum-sized frame
/// transmission) to wall-clock time for a given Ethernet flavour.
///
/// The paper's analysis never needs these — everything is slot-denominated —
/// but examples and docs report real latencies for a 100 Mbit/s network,
/// matching the paper's industrial setting.

#include <cstdint>

namespace rtether {

/// Maximum Ethernet frame as it occupies the wire: 1500 payload + 18
/// header/FCS + 8 preamble/SFD + 12 interframe gap.
inline constexpr std::uint64_t kMaxFrameWireBytes = 1538;

/// Minimum wire occupancy of an Ethernet frame (64 + preamble + IFG).
inline constexpr std::uint64_t kMinFrameWireBytes = 84;

/// Common link rates, bits per second.
enum class LinkRate : std::uint64_t {
  kFast100M = 100'000'000,
  kGigabit = 1'000'000'000,
};

/// Duration of one slot (one maximal frame) in nanoseconds at `rate`.
[[nodiscard]] constexpr std::uint64_t slot_duration_ns(LinkRate rate) {
  return kMaxFrameWireBytes * 8 * 1'000'000'000ULL /
         static_cast<std::uint64_t>(rate);
}

/// Converts a slot count to microseconds at `rate` (rounded down).
[[nodiscard]] constexpr std::uint64_t slots_to_us(std::uint64_t slots,
                                                  LinkRate rate) {
  return slots * slot_duration_ns(rate) / 1000;
}

static_assert(slot_duration_ns(LinkRate::kFast100M) == 123'040,
              "one max frame at 100 Mbit/s is 123.04 us");

}  // namespace rtether
