/// Validation V1 — the delay guarantee of Eq 18.1, measured.
///
/// The paper asserts analytically that every admitted message is delivered
/// within d_i + T_latency but never measures it. Here the full pipeline
/// runs: channel establishment over real Request/Response frames, periodic
/// senders, slot-accurate simulation of both hops — at the Fig 18.5
/// operating point and under saturated random loads, with and without
/// best-effort cross-traffic. Required outcome: zero misses, worst
/// delay/bound ratio ≤ 1.

#include <cstdio>

#include "analysis/report.hpp"
#include "analysis/validation.hpp"

using namespace rtether;

namespace {

/// The reproduction's required outcome, per configuration: zero misses,
/// zero loss, and a run that actually completed (a budget-exhausted sim
/// yields partial verdicts that must not pass as HELD).
bool guarantee_held(const analysis::ValidationResult& result) {
  return !result.sim_budget_exhausted && result.deadline_misses == 0 &&
         result.frames_sent == result.frames_delivered;
}

}  // namespace

int main() {
  bool all_held = true;
  std::puts("================================================================");
  std::puts("Validation V1 — measured worst-case delay vs the Eq 18.1 bound");
  std::puts("================================================================");

  {
    analysis::ValidationConfig config;
    config.scheme = "ADPS";
    config.workload = traffic::MasterSlaveConfig{};  // 10/50 paper setup
    config.request_count = 200;
    config.run_slots = 10'000;
    config.seed = 42;
    const auto result = analysis::run_guarantee_validation(config);
    analysis::print_validation_report(
        "V1a: Fig 18.5 operating point, ADPS, synchronous releases",
        result);
    all_held = all_held && guarantee_held(result);
  }
  {
    analysis::ValidationConfig config;
    config.scheme = "SDPS";
    config.workload = traffic::MasterSlaveConfig{};
    config.request_count = 200;
    config.run_slots = 10'000;
    config.seed = 42;
    const auto result = analysis::run_guarantee_validation(config);
    analysis::print_validation_report(
        "V1b: same load under SDPS (fewer channels, same guarantee)",
        result);
    all_held = all_held && guarantee_held(result);
  }
  {
    analysis::ValidationConfig config;
    config.scheme = "ADPS";
    config.workload.masters = 4;
    config.workload.slaves = 12;
    config.workload.period = traffic::SlotDistribution::choice({50, 100, 200});
    config.workload.capacity = traffic::SlotDistribution::uniform(1, 4);
    config.workload.deadline = traffic::SlotDistribution::uniform(10, 80);
    config.request_count = 150;
    config.run_slots = 10'000;
    config.seed = 7;
    const auto result = analysis::run_guarantee_validation(config);
    analysis::print_validation_report(
        "V1c: heterogeneous saturated workload (random P, C, d)", result);
    all_held = all_held && guarantee_held(result);
  }
  {
    analysis::ValidationConfig config;
    config.scheme = "ADPS";
    config.workload.masters = 4;
    config.workload.slaves = 12;
    config.request_count = 100;
    config.run_slots = 6'000;
    config.with_best_effort = true;
    config.best_effort_load = 0.7;
    config.seed = 11;
    const auto result = analysis::run_guarantee_validation(config);
    analysis::print_validation_report(
        "V1d: with 70% best-effort cross-traffic per node "
        "(allowance includes 1 max frame blocking per hop)",
        result);
    all_held = all_held && guarantee_held(result);
  }
  std::puts("paper:    guarantee asserted analytically (no measurement)");
  std::puts("measured: see 'guarantee HELD/VIOLATED' verdicts above — the");
  std::puts("reproduction requires HELD on all four configurations.\n");
  if (!all_held) {
    std::puts("FAIL: a configuration missed, lost frames, or exhausted its "
              "event budget");
    return 1;
  }
  return 0;
}
