/// Reproduction of **Figure 18.5** — the paper's headline experiment.
///
/// Network: 10 master nodes + 50 slave nodes (Fig 18.1). Every requested
/// channel has C_i = 3, P_i = 100, d_i = 40. The x-axis sweeps the number
/// of requested channels 20…200; the y-axis counts accepted channels under
/// (1) ADPS and (2) SDPS. Paper result: ADPS ≈ 110–120 accepted at 200
/// requested, SDPS plateaus at ≈ 60.
///
/// This binary regenerates the figure (table + ASCII plot + CSV on stdout)
/// averaged over seeds, and appends the UDPS/Search extension schemes for
/// context.

#include <cstdio>
#include <iostream>

#include "analysis/acceptance.hpp"
#include "analysis/report.hpp"

using namespace rtether;

int main() {
  std::puts("================================================================");
  std::puts("Figure 18.5 — accepted vs requested channels (10 masters, 50");
  std::puts("slaves, every channel {P=100, C=3, d=40}, master->slave)");
  std::puts("================================================================");

  const traffic::MasterSlaveConfig workload{};  // paper defaults
  analysis::AcceptanceSweepConfig sweep;
  sweep.request_counts = {20, 40, 60, 80, 100, 120, 140, 160, 180, 200};
  sweep.seeds = 10;
  sweep.base_seed = 42;

  std::vector<analysis::AcceptanceCurve> curves;
  curves.push_back(
      analysis::run_master_slave_sweep("ADPS", workload, sweep));  // (1)
  curves.push_back(
      analysis::run_master_slave_sweep("SDPS", workload, sweep));  // (2)

  analysis::print_acceptance_report(
      "Fig 18.5 reproduction: accepted channels (mean of 10 seeds)",
      curves);

  // Paper-vs-measured summary for EXPERIMENTS.md.
  const double sdps_plateau = curves[1].points.back().accepted_mean;
  const double adps_plateau = curves[0].points.back().accepted_mean;
  std::printf("paper:    SDPS plateau ~60, ADPS ~110-120, ratio ~1.8x\n");
  std::printf("measured: SDPS plateau %.1f, ADPS %.1f, ratio %.2fx\n\n",
              sdps_plateau, adps_plateau, adps_plateau / sdps_plateau);

  // Extension: the same sweep for the two non-paper schemes.
  std::vector<analysis::AcceptanceCurve> extended = curves;
  extended.push_back(
      analysis::run_master_slave_sweep("UDPS", workload, sweep));
  extended.push_back(
      analysis::run_master_slave_sweep("Search", workload, sweep));
  analysis::print_acceptance_report(
      "Extension: utilization-weighted (UDPS) and exhaustive (Search) DPS",
      extended);

  std::puts("CSV (requested, ADPS, SDPS, UDPS, Search):");
  analysis::write_acceptance_csv(std::cout, extended);
  return 0;
}
