#include "sim/frame.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/bytes.hpp"
#include "common/units.hpp"
#include "net/ipv4.hpp"

namespace rtether::sim {

const char* to_string(FrameClass cls) {
  switch (cls) {
    case FrameClass::kManagement:
      return "management";
    case FrameClass::kRealTime:
      return "real-time";
    case FrameClass::kBestEffort:
      return "best-effort";
  }
  return "?";
}

std::optional<FrameInfo> classify_frame(std::span<const std::uint8_t> bytes) {
  ByteReader reader(bytes);
  const auto ethernet = net::EthernetHeader::parse(reader);
  if (!ethernet) {
    return std::nullopt;
  }
  FrameInfo info;
  info.source_mac = ethernet->source;
  info.destination_mac = ethernet->destination;

  if (ethernet->ether_type == net::EtherType::kRtManagement) {
    info.cls = FrameClass::kManagement;
    return info;
  }
  if (ethernet->ether_type == net::EtherType::kIpv4) {
    ByteReader ip_reader(bytes.subspan(net::EthernetHeader::kWireSize));
    const auto ip = net::Ipv4Header::parse(ip_reader);
    if (ip && net::is_rt_frame(*ip)) {
      info.cls = FrameClass::kRealTime;
      info.rt_tag = net::decode_rt_tag(*ip);
      return info;
    }
  }
  info.cls = FrameClass::kBestEffort;
  return info;
}

std::uint64_t SimFrame::wire_bytes() const {
  const std::uint64_t on_wire =
      bytes.size() + extra_payload_bytes + 4 /*FCS*/ + 8 /*preamble*/ +
      12 /*IFG*/;
  return std::clamp(on_wire, kMinFrameWireBytes, kMaxFrameWireBytes);
}

SimFrame SimFrame::make(std::uint64_t frame_id,
                        std::vector<std::uint8_t> frame_bytes,
                        std::uint64_t extra_payload_bytes, Tick created_at,
                        NodeId origin) {
  SimFrame frame;
  frame.id = frame_id;
  frame.bytes = std::move(frame_bytes);
  frame.extra_payload_bytes = extra_payload_bytes;
  const auto info = classify_frame(frame.bytes);
  RTETHER_ASSERT_MSG(info.has_value(), "frame bytes lack an Ethernet header");
  frame.info = *info;
  frame.created_at = created_at;
  frame.origin = origin;
  return frame;
}

}  // namespace rtether::sim
