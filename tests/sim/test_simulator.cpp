#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rtether::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  const Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_TRUE(sim.run_all());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, SameTickIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  EXPECT_TRUE(sim.run_all());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  Tick seen = 0;
  sim.schedule_at(100, [&] {
    sim.schedule_in(5, [&] { seen = sim.now(); });
  });
  EXPECT_TRUE(sim.run_all());
  EXPECT_EQ(seen, 105u);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) {
      sim.schedule_in(10, chain);
    }
  };
  sim.schedule_at(0, chain);
  EXPECT_TRUE(sim.run_all());
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 40u);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int executed = 0;
  sim.schedule_at(10, [&] { ++executed; });
  sim.schedule_at(20, [&] { ++executed; });
  sim.schedule_at(30, [&] { ++executed; });
  sim.run_until(20);
  EXPECT_EQ(executed, 2);
  EXPECT_EQ(sim.now(), 20u);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500u);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, SchedulingIntoThePastAsserts) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  EXPECT_TRUE(sim.run_all());
  EXPECT_DEATH(sim.schedule_at(5, [] {}), "past");
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.schedule_at(static_cast<Tick>(i), [] {});
  }
  EXPECT_TRUE(sim.run_all());
  EXPECT_EQ(sim.executed_events(), 7u);
}

TEST(Simulator, RunawayGuardReportsInsteadOfSpinning) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.schedule_in(1, forever); };
  sim.schedule_at(0, forever);
  // A self-rescheduling loop exhausts the event budget; run_all must return
  // false (in every build type) rather than spin or abort the process.
  EXPECT_FALSE(sim.run_all(1000));
  EXPECT_EQ(sim.executed_events(), 1000u);
  EXPECT_GT(sim.pending(), 0u);
  // The simulation is resumable after the report.
  EXPECT_FALSE(sim.run_all(10));
  EXPECT_EQ(sim.executed_events(), 1010u);
}

}  // namespace
}  // namespace rtether::sim
