#include "core/id_allocator.hpp"

namespace rtether::core {

std::optional<ChannelId> ChannelIdAllocator::allocate() {
  if (live_count_ >= kCapacity) {
    return std::nullopt;
  }
  std::uint32_t candidate = next_hint_;
  // At least one free slot exists; wrap at most once.
  for (std::uint32_t scanned = 0; scanned < kCapacity; ++scanned) {
    if (candidate > 0xffff) {
      candidate = 1;
    }
    if (!live_[candidate]) {
      live_[candidate] = true;
      ++live_count_;
      next_hint_ = candidate + 1;
      return ChannelId(static_cast<std::uint16_t>(candidate));
    }
    ++candidate;
  }
  return std::nullopt;  // unreachable: live_count_ < kCapacity
}

bool ChannelIdAllocator::release(ChannelId id) {
  if (id == kInvalid || !live_[id.value()]) {
    return false;
  }
  live_[id.value()] = false;
  --live_count_;
  if (id.value() < next_hint_) {
    next_hint_ = id.value();
  }
  return true;
}

bool ChannelIdAllocator::is_live(ChannelId id) const {
  return id != kInvalid && live_[id.value()];
}

}  // namespace rtether::core
