// Property-based round-trip tests for every wire format: arbitrary field
// values must survive serialize → parse bit-exactly, and random byte noise
// must never crash a parser (it may parse to garbage or fail, but not UB —
// the bounds-checked readers guarantee it).

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "net/deadline_codec.hpp"
#include "net/ethernet.hpp"
#include "net/ipv4.hpp"
#include "net/mgmt_frames.hpp"
#include "sim/frame.hpp"

namespace rtether::net {
namespace {

class CodecProperties : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperties,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST_P(CodecProperties, DeadlineTagRoundTrips) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const RtFrameTag tag{rng.uniform(0, kMaxEncodableDeadline),
                         ChannelId(static_cast<std::uint16_t>(
                             rng.uniform(0, 0xffff)))};
    Ipv4Header header;
    encode_rt_tag(tag, header);
    const auto decoded = decode_rt_tag(header);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, tag);
  }
}

TEST_P(CodecProperties, RequestFrameRoundTrips) {
  Rng rng(GetParam() ^ 0xa);
  for (int i = 0; i < 200; ++i) {
    RequestFrame frame;
    frame.connection_request = ConnectionRequestId(
        static_cast<std::uint8_t>(rng.uniform(0, 255)));
    frame.rt_channel =
        ChannelId(static_cast<std::uint16_t>(rng.uniform(0, 0xffff)));
    frame.source_mac = MacAddress::from_u48(rng.uniform(0, (1ULL << 48) - 1));
    frame.destination_mac =
        MacAddress::from_u48(rng.uniform(0, (1ULL << 48) - 1));
    frame.source_ip =
        Ipv4Address(static_cast<std::uint32_t>(rng.next_u64()));
    frame.destination_ip =
        Ipv4Address(static_cast<std::uint32_t>(rng.next_u64()));
    frame.period = static_cast<std::uint32_t>(rng.next_u64());
    frame.capacity = static_cast<std::uint32_t>(rng.next_u64());
    frame.deadline = static_cast<std::uint32_t>(rng.next_u64());
    const auto parsed = RequestFrame::parse(frame.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, frame);
  }
}

TEST_P(CodecProperties, ResponseFrameRoundTrips) {
  Rng rng(GetParam() ^ 0xb);
  for (int i = 0; i < 200; ++i) {
    ResponseFrame frame;
    frame.connection_request = ConnectionRequestId(
        static_cast<std::uint8_t>(rng.uniform(0, 255)));
    frame.rt_channel =
        ChannelId(static_cast<std::uint16_t>(rng.uniform(0, 0xffff)));
    frame.accepted = rng.bernoulli(0.5);
    frame.uplink_deadline = static_cast<std::uint32_t>(rng.next_u64());
    const auto parsed = ResponseFrame::parse(frame.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, frame);
  }
}

TEST_P(CodecProperties, UdpDatagramRoundTrips) {
  Rng rng(GetParam() ^ 0xc);
  for (int i = 0; i < 100; ++i) {
    UdpDatagram datagram;
    datagram.ip.tos = static_cast<std::uint8_t>(rng.uniform(0, 255));
    datagram.ip.ttl = static_cast<std::uint8_t>(rng.uniform(1, 255));
    datagram.ip.identification =
        static_cast<std::uint16_t>(rng.uniform(0, 0xffff));
    datagram.ip.source =
        Ipv4Address(static_cast<std::uint32_t>(rng.next_u64()));
    datagram.ip.destination =
        Ipv4Address(static_cast<std::uint32_t>(rng.next_u64()));
    datagram.payload.resize(rng.index(512));
    for (auto& byte : datagram.payload) {
      byte = static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    const auto parsed = UdpDatagram::parse(datagram.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->payload, datagram.payload);
    EXPECT_EQ(parsed->ip.tos, datagram.ip.tos);
    EXPECT_EQ(parsed->ip.source, datagram.ip.source);
    EXPECT_EQ(parsed->ip.destination, datagram.ip.destination);
  }
}

TEST_P(CodecProperties, ParsersNeverCrashOnNoise) {
  Rng rng(GetParam() ^ 0xd);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> noise(rng.index(64));
    for (auto& byte : noise) {
      byte = static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    // Any of these may fail; none may crash or read out of bounds.
    (void)RequestFrame::parse(noise);
    (void)ResponseFrame::parse(noise);
    (void)TeardownFrame::parse(noise);
    (void)peek_mgmt_type(noise);
    (void)UdpDatagram::parse(noise);
    (void)sim::classify_frame(noise);
    ByteReader reader(noise);
    (void)Ipv4Header::parse(reader);
  }
}

TEST_P(CodecProperties, CorruptedRequestNeverParsesAsEqual) {
  Rng rng(GetParam() ^ 0xe);
  RequestFrame frame;
  frame.connection_request = ConnectionRequestId(7);
  frame.period = 100;
  frame.capacity = 3;
  frame.deadline = 40;
  const auto bytes = frame.serialize();
  for (int i = 0; i < 100; ++i) {
    auto corrupted = bytes;
    const std::size_t pos = rng.index(corrupted.size());
    const auto flip =
        static_cast<std::uint8_t>(1u << rng.index(8));
    corrupted[pos] ^= flip;
    const auto parsed = RequestFrame::parse(corrupted);
    if (pos == 0) {
      // Type byte corrupted: must be rejected outright.
      EXPECT_FALSE(parsed.has_value());
    } else if (parsed.has_value()) {
      // Parsed, but must not equal the original (no silent corruption).
      EXPECT_NE(*parsed, frame);
    }
  }
}

}  // namespace
}  // namespace rtether::net
