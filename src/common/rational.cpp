#include "common/rational.hpp"

#include <limits>
#include <numeric>

#include "common/assert.hpp"

namespace rtether {

namespace {

using detail::Int128;

Int128 gcd128(Int128 a, Int128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const Int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

bool fits_i64(Int128 v) {
  return v >= std::numeric_limits<std::int64_t>::min() &&
         v <= std::numeric_limits<std::int64_t>::max();
}

}  // namespace

Rational Rational::normalized(detail::Int128 num, detail::Int128 den) {
  RTETHER_ASSERT_MSG(den != 0, "rational with zero denominator");
  if (den < 0) {
    num = -num;
    den = -den;
  }
  if (num == 0) {
    den = 1;
  } else {
    const Int128 g = gcd128(num, den);
    num /= g;
    den /= g;
  }
  RTETHER_ASSERT_MSG(fits_i64(num) && fits_i64(den),
                     "rational overflow after normalization");
  Rational r;
  r.num_ = static_cast<std::int64_t>(num);
  r.den_ = static_cast<std::int64_t>(den);
  return r;
}

Rational::Rational(std::int64_t num, std::int64_t den) {
  *this = normalized(num, den);
}

Rational Rational::operator+(const Rational& rhs) const {
  return normalized(static_cast<Int128>(num_) * rhs.den_ +
                        static_cast<Int128>(rhs.num_) * den_,
                    static_cast<Int128>(den_) * rhs.den_);
}

Rational Rational::operator-(const Rational& rhs) const {
  return normalized(static_cast<Int128>(num_) * rhs.den_ -
                        static_cast<Int128>(rhs.num_) * den_,
                    static_cast<Int128>(den_) * rhs.den_);
}

Rational Rational::operator*(const Rational& rhs) const {
  return normalized(static_cast<Int128>(num_) * rhs.num_,
                    static_cast<Int128>(den_) * rhs.den_);
}

Rational Rational::operator/(const Rational& rhs) const {
  RTETHER_ASSERT_MSG(rhs.num_ != 0, "rational division by zero");
  return normalized(static_cast<Int128>(num_) * rhs.den_,
                    static_cast<Int128>(den_) * rhs.num_);
}

Rational& Rational::operator+=(const Rational& rhs) {
  *this = *this + rhs;
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) {
  *this = *this - rhs;
  return *this;
}

std::strong_ordering Rational::operator<=>(const Rational& rhs) const {
  const Int128 lhs_scaled = static_cast<Int128>(num_) * rhs.den_;
  const Int128 rhs_scaled = static_cast<Int128>(rhs.num_) * den_;
  if (lhs_scaled < rhs_scaled) return std::strong_ordering::less;
  if (lhs_scaled > rhs_scaled) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

bool Rational::operator==(const Rational& rhs) const {
  return num_ == rhs.num_ && den_ == rhs.den_;
}

double Rational::to_double() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Rational::to_string() const {
  if (den_ == 1) {
    return std::to_string(num_);
  }
  return std::to_string(num_) + "/" + std::to_string(den_);
}

}  // namespace rtether
