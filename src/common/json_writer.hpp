#pragma once

/// @file json_writer.hpp
/// A small streaming JSON writer for machine-readable bench and report
/// output. Benches used to print human tables only; CI wants a stable,
/// parseable artifact (BENCH_*.json) so the perf trajectory of the repo can
/// be recorded per commit. The writer emits strict JSON: UTF-8 pass-through
/// strings with the mandatory escapes, shortest-round-trip doubles
/// (std::to_chars), and no trailing commas. Misuse (value without a key
/// inside an object, unbalanced end_*) trips an assert rather than emitting
/// malformed output.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rtether {

class JsonWriter {
 public:
  JsonWriter() = default;

  // Containers. The first begin_* call opens the document root; the writer
  // is `complete()` once that root closes.
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be directly inside an object and must be
  /// followed by exactly one value or container.
  JsonWriter& key(std::string_view name);

  // Scalar values (as array elements or after `key`).
  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Convenience: `key(name).value(v)`.
  template <typename T>
  JsonWriter& member(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// True once the root container has been closed.
  [[nodiscard]] bool complete() const;

  /// The document so far; asserts `complete()`.
  [[nodiscard]] const std::string& str() const;

  /// Writes the completed document (plus trailing newline) to `path`;
  /// false on I/O failure.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  /// Comma/colon bookkeeping shared by every emission.
  void begin_value();

  void append_escaped(std::string_view text);

  std::string out_;
  std::vector<Scope> scopes_;
  /// Whether the current container already holds at least one element.
  std::vector<bool> has_element_;
  bool key_pending_{false};
  bool root_closed_{false};
};

}  // namespace rtether
