#include "edf/busy_period.hpp"

#include <gtest/gtest.h>

#include "common/random.hpp"

namespace rtether::edf {
namespace {

PseudoTask task(std::uint16_t id, Slot period, Slot capacity, Slot deadline) {
  return PseudoTask{ChannelId(id), period, capacity, deadline};
}

TEST(BusyPeriod, EmptySetIsZero) {
  const TaskSet set;
  EXPECT_EQ(busy_period(set), 0u);
}

TEST(BusyPeriod, SingleTask) {
  TaskSet set;
  set.add(task(1, 100, 3, 40));
  // One job of 3 slots, then idle until t=100.
  EXPECT_EQ(busy_period(set), 3u);
}

TEST(BusyPeriod, TwoTasksNoCarryOver) {
  TaskSet set;
  set.add(task(1, 100, 3, 40));
  set.add(task(2, 100, 5, 50));
  EXPECT_EQ(busy_period(set), 8u);
}

TEST(BusyPeriod, CarryOverExtends) {
  // W(L): L0 = 6; tasks {P=8,C=4}, {P=12,C=2}: W(6)=6 → done? ceil(6/8)*4 +
  // ceil(6/12)*2 = 4+2 = 6 → fixed point 6.
  TaskSet set;
  set.add(task(1, 8, 4, 8));
  set.add(task(2, 12, 2, 12));
  EXPECT_EQ(busy_period(set), 6u);
}

TEST(BusyPeriod, IterationGrowsAcrossReleases) {
  // {P=4,C=2} + {P=6,C=3}: U = 1. L0=5, W(5)=ceil(5/4)*2+ceil(5/6)*3=4+3=7,
  // W(7)=4+6=10, W(10)=6+6=12, W(12)=6+6=12 → BP=12 (= hyperperiod, U=1).
  TaskSet set;
  set.add(task(1, 4, 2, 4));
  set.add(task(2, 6, 3, 6));
  EXPECT_EQ(busy_period(set), 12u);
}

TEST(BusyPeriod, FullUtilizationSingleTask) {
  TaskSet set;
  set.add(task(1, 5, 5, 5));
  // Never idles within a period; fixed point at 5 (link busy 5 of every 5).
  EXPECT_EQ(busy_period(set), 5u);
}

TEST(BusyPeriod, OverUtilizationDiverges) {
  TaskSet set;
  set.add(task(1, 4, 3, 4));
  set.add(task(2, 4, 3, 4));  // U = 1.5
  EXPECT_FALSE(busy_period(set).has_value());
}

TEST(BusyPeriod, AtLeastTotalCapacity) {
  TaskSet set;
  set.add(task(1, 50, 7, 20));
  set.add(task(2, 90, 11, 30));
  set.add(task(3, 70, 5, 25));
  const auto bp = busy_period(set);
  ASSERT_TRUE(bp.has_value());
  EXPECT_GE(*bp, set.total_capacity());
}

TEST(BusyPeriod, PaperOperatingPoint) {
  // 6 channels {P=100, C=3} on one link: backlog 18 < 100 → BP = 18.
  TaskSet set;
  for (std::uint16_t i = 1; i <= 6; ++i) {
    set.add(task(i, 100, 3, 20));
  }
  EXPECT_EQ(busy_period(set), 18u);
}


TEST(BusyPeriodWith, MatchesMutatedSetOnRandomSets) {
  // busy_period_with(set, x) must equal busy_period of the set with x added
  // — the incremental admission path relies on this identity.
  rtether::Rng rng(5);
  static constexpr Slot kPeriods[] = {8, 12, 40, 60, 100, 150};
  for (int trial = 0; trial < 200; ++trial) {
    TaskSet set;
    const auto size = rng.index(12);
    for (std::uint16_t i = 0; i < size; ++i) {
      const Slot p = kPeriods[rng.index(std::size(kPeriods))];
      const Slot c = 1 + rng.index(3);
      set.add(task(static_cast<std::uint16_t>(i + 1), p, c,
                   c + rng.index(p - c + 1)));
    }
    const Slot p = kPeriods[rng.index(std::size(kPeriods))];
    const Slot c = 1 + rng.index(3);
    const PseudoTask extra =
        task(999, p, c, c + rng.index(p - c + 1));

    const auto incremental = busy_period_with(set, extra);
    set.add(extra);
    EXPECT_EQ(incremental, busy_period(set)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace rtether::edf
